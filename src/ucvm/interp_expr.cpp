// Per-lane expression evaluation, lvalue resolution, builtin functions,
// access classification and static cost charging.
#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/str.hpp"
#include "ucvm/interp_detail.hpp"

namespace uc::vm {

std::string Value::to_string() const {
  if (is_float) {
    return support::format("%g", f);
  }
  return std::to_string(i);
}

namespace detail {

using lang::AssignOp;
using lang::BinaryOp;
using lang::BuiltinId;
using lang::ExprKind;
using lang::ReduceKind;
using lang::ScalarKind;
using lang::SymbolKind;
using lang::UnaryOp;

Value eval_binary_op(Impl& vm, BinaryOp op, const Value& a, const Value& b,
                     const Expr& where) {
  const bool flt = a.is_float || b.is_float;
  switch (op) {
    case BinaryOp::kAdd:
      return flt ? Value::of_float(a.as_float() + b.as_float())
                 : Value::of_int(a.i + b.i);
    case BinaryOp::kSub:
      return flt ? Value::of_float(a.as_float() - b.as_float())
                 : Value::of_int(a.i - b.i);
    case BinaryOp::kMul:
      return flt ? Value::of_float(a.as_float() * b.as_float())
                 : Value::of_int(a.i * b.i);
    case BinaryOp::kDiv:
      if (flt) return Value::of_float(a.as_float() / b.as_float());
      if (b.i == 0) vm.runtime_error(&where, "integer division by zero");
      return Value::of_int(a.i / b.i);
    case BinaryOp::kMod:
      if (b.as_int() == 0) vm.runtime_error(&where, "modulo by zero");
      return Value::of_int(a.as_int() % b.as_int());
    case BinaryOp::kEq:
      return Value::of_bool(flt ? a.as_float() == b.as_float() : a.i == b.i);
    case BinaryOp::kNe:
      return Value::of_bool(flt ? a.as_float() != b.as_float() : a.i != b.i);
    case BinaryOp::kLt:
      return Value::of_bool(flt ? a.as_float() < b.as_float() : a.i < b.i);
    case BinaryOp::kGt:
      return Value::of_bool(flt ? a.as_float() > b.as_float() : a.i > b.i);
    case BinaryOp::kLe:
      return Value::of_bool(flt ? a.as_float() <= b.as_float() : a.i <= b.i);
    case BinaryOp::kGe:
      return Value::of_bool(flt ? a.as_float() >= b.as_float() : a.i >= b.i);
    case BinaryOp::kBitAnd:
      return Value::of_int(a.as_int() & b.as_int());
    case BinaryOp::kBitOr:
      return Value::of_int(a.as_int() | b.as_int());
    case BinaryOp::kBitXor:
      return Value::of_int(a.as_int() ^ b.as_int());
    case BinaryOp::kShl:
      return Value::of_int(a.as_int() << (b.as_int() & 63));
    case BinaryOp::kShr:
      return Value::of_int(a.as_int() >> (b.as_int() & 63));
    case BinaryOp::kLogAnd:
    case BinaryOp::kLogOr:
      // Handled with short-circuit in eval(); unreachable here.
      return Value::of_bool(false);
  }
  return Value::of_int(0);
}

// Combines two values with a reduction operator.
Value fold_reduce_value(ReduceKind op, const Value& acc, const Value& v) {
  const bool flt = acc.is_float || v.is_float;
  switch (op) {
    case ReduceKind::kAdd:
      return flt ? Value::of_float(acc.as_float() + v.as_float())
                 : Value::of_int(acc.i + v.i);
    case ReduceKind::kMul:
      return flt ? Value::of_float(acc.as_float() * v.as_float())
                 : Value::of_int(acc.i * v.i);
    case ReduceKind::kAnd:
      return Value::of_bool(acc.truthy() && v.truthy());
    case ReduceKind::kOr:
      return Value::of_bool(acc.truthy() || v.truthy());
    case ReduceKind::kXor:
      return Value::of_int(acc.as_int() ^ v.as_int());
    case ReduceKind::kMax:
      if (flt) {
        return Value::of_float(std::max(acc.as_float(), v.as_float()));
      }
      return Value::of_int(std::max(acc.i, v.i));
    case ReduceKind::kMin:
      if (flt) {
        return Value::of_float(std::min(acc.as_float(), v.as_float()));
      }
      return Value::of_int(std::min(acc.i, v.i));
    case ReduceKind::kArb:
      return acc;  // arbitrary: keep the first enabled operand
  }
  return acc;
}

Value reduce_identity_value(ReduceKind op, bool flt) {
  switch (op) {
    case ReduceKind::kAdd:
      return flt ? Value::of_float(0.0) : Value::of_int(0);
    case ReduceKind::kMul:
      return flt ? Value::of_float(1.0) : Value::of_int(1);
    case ReduceKind::kAnd:
      return Value::of_int(1);
    case ReduceKind::kOr:
      return Value::of_int(0);
    case ReduceKind::kXor:
      return Value::of_int(0);
    case ReduceKind::kMax:
      return flt ? Value::of_float(-static_cast<double>(lang::kUcInf))
                 : Value::of_int(-lang::kUcInf);
    case ReduceKind::kMin:
      return flt ? Value::of_float(static_cast<double>(lang::kUcInf))
                 : Value::of_int(lang::kUcInf);
    case ReduceKind::kArb:
      return Value::of_int(0);
  }
  return Value::of_int(0);
}

// ---------------------------------------------------------------------------
// Arrays & access classification
// ---------------------------------------------------------------------------

ArrayPtr Impl::array_of(const Symbol& sym, const EvalCtx& ctx) {
  const FrameSlot* slot = nullptr;
  if (sym.kind == SymbolKind::kGlobalVar) {
    slot = &globals[static_cast<std::size_t>(sym.slot)];
  } else if (ctx.frame != nullptr &&
             static_cast<std::size_t>(sym.slot) < ctx.frame->slots.size()) {
    slot = &ctx.frame->slots[static_cast<std::size_t>(sym.slot)];
  }
  if (slot == nullptr || slot->kind != FrameSlot::Kind::kArray ||
      slot->array == nullptr) {
    throw support::UcRuntimeError("array '" + sym.name +
                                  "' used before its declaration executed");
  }
  return slot->array;
}

void classify_remote_access(const ArrayObj& arr, std::int64_t flat,
                            cm::VpIndex vp, const std::int64_t* lane_coords,
                            std::size_t n_dims, bool geom_matches,
                            const cm::CostModel& cost, AccessStats& stats) {
  const auto owner = arr.owner(flat);
  if (owner == vp) {
    ++stats.local;
    return;
  }
  // A slice's element coordinates live in the parent's geometry, which
  // does not align with the lane geometry — remote slice traffic routes.
  if (arr.is_slice()) {
    ++stats.router;
    return;
  }
  // When the lane geometry matches the array shape, a single-axis unit-ish
  // offset travels over the NEWS grid; everything else uses the router.
  if (geom_matches) {
    std::int64_t owner_coords[8];
    arr.unflatten(owner, owner_coords);
    int diff_axes = 0;
    std::int64_t hops = 0;
    for (std::size_t d = 0; d < n_dims; ++d) {
      if (owner_coords[d] != lane_coords[d]) {
        ++diff_axes;
        hops = std::abs(owner_coords[d] - lane_coords[d]);
      }
    }
    if (diff_axes == 1) {
      // NEWS is profitable for short hops; long strides use the router.
      if (static_cast<std::uint64_t>(hops) * cost.news_op <= cost.router_op) {
        ++stats.news;
        stats.news_max_hops =
            std::max(stats.news_max_hops, static_cast<std::uint64_t>(hops));
        return;
      }
    }
  }
  ++stats.router;
}

void Impl::classify_access(const ArrayObj& arr, std::int64_t flat,
                           EvalCtx& ctx) {
  if (ctx.stats == nullptr || ctx.suppress_comm > 0) return;
  if (ctx.is_frontend()) {
    ++ctx.stats->frontend;
    return;
  }
  if (arr.replicated()) {
    ++ctx.stats->local;  // every VP holds a copy (copy mapping)
    return;
  }
  const auto& dims = ctx.space->dims;
  const bool geom_matches = dims.size() <= 8 && dims == arr.dims();
  const std::int64_t* lane_coords =
      dims.empty() ? nullptr
                   : &ctx.space->coords[static_cast<std::size_t>(ctx.lane) *
                                        dims.size()];
  classify_remote_access(arr, flat, ctx.space->vps[ctx.lane], lane_coords,
                         dims.size(), geom_matches, machine.cost_model(),
                         *ctx.stats);
}

// ---------------------------------------------------------------------------
// Lvalues, reads and writes
// ---------------------------------------------------------------------------

std::optional<WriteTarget> Impl::resolve_lvalue(const Expr& e, EvalCtx& ctx) {
  if (e.kind == ExprKind::kIdent) {
    const auto& id = static_cast<const lang::IdentExpr&>(e);
    const Symbol* sym = id.symbol;
    if (sym == nullptr) runtime_error(&e, "unresolved identifier");
    WriteTarget t;
    if (sym->kind == SymbolKind::kGlobalVar) {
      t.kind = WriteTarget::Kind::kGlobal;
      t.index = sym->slot;
      return t;
    }
    // Local: per-lane storage if any ancestor space declared it.
    std::int64_t owner_lane = 0;
    LaneSpace* owner =
        ctx.space->find_local(sym->slot, ctx.lane, &owner_lane);
    if (owner != nullptr) {
      t.kind = WriteTarget::Kind::kLaneLocal;
      t.obj = owner;
      t.index = sym->slot;
      t.lane = owner_lane;
      return t;
    }
    t.kind = WriteTarget::Kind::kFrame;
    t.obj = ctx.frame;
    t.index = sym->slot;
    return t;
  }
  if (e.kind == ExprKind::kSubscript) {
    const auto& sub = static_cast<const lang::SubscriptExpr&>(e);
    const auto& id = static_cast<const lang::IdentExpr&>(*sub.base);
    ArrayPtr arr = array_of(*id.symbol, ctx);
    std::int64_t idx[8];
    const std::size_t n = std::min<std::size_t>(sub.indices.size(), 8);
    for (std::size_t k = 0; k < n; ++k) {
      idx[k] = eval(*sub.indices[k], ctx).as_int();
      if (ctx.undef) return std::nullopt;
    }
    std::int64_t flat = arr->flatten(idx, n);
    if (flat < 0) {
      std::string what = arr->name();
      for (std::size_t k = 0; k < n; ++k) {
        what += "[" + std::to_string(idx[k]) + "]";
      }
      runtime_error(&e, "array subscript out of range: " + what);
    }
    WriteTarget t;
    t.kind = WriteTarget::Kind::kArray;
    t.obj = arr.get();
    t.index = flat;
    return t;
  }
  runtime_error(&e, "expression is not assignable");
}

Value Impl::read_target(const WriteTarget& t, const EvalCtx& ctx) {
  switch (t.kind) {
    case WriteTarget::Kind::kArray:
      return static_cast<ArrayObj*>(t.obj)->load(t.index);
    case WriteTarget::Kind::kGlobal:
      return globals[static_cast<std::size_t>(t.index)].scalar;
    case WriteTarget::Kind::kFrame:
      return static_cast<Frame*>(t.obj)
          ->slots[static_cast<std::size_t>(t.index)]
          .scalar;
    case WriteTarget::Kind::kLaneLocal: {
      auto* space = static_cast<LaneSpace*>(t.obj);
      return space->locals[static_cast<std::int32_t>(t.index)]
                         [static_cast<std::size_t>(t.lane)];
    }
  }
  (void)ctx;
  return Value::of_int(0);
}

void Impl::write_value(const WriteTarget& t, Value v, const Expr& where,
                       EvalCtx& ctx) {
  if (ctx.writes != nullptr) {
    // Function-call frames entered during this lane's evaluation are
    // private to the call: their locals must update immediately or loops
    // inside the function would never see their own increments.
    const bool private_frame =
        t.kind == WriteTarget::Kind::kFrame && t.obj == ctx.frame &&
        ctx.frame != ctx.statement_frame;
    if (!private_frame) {
      ctx.writes->push_back(Write{t, v, &where});
      return;
    }
  }
  apply_write(t, v);
}

void Impl::apply_write(const WriteTarget& t, const Value& v) {
  switch (t.kind) {
    case WriteTarget::Kind::kArray:
      static_cast<ArrayObj*>(t.obj)->store(t.index, v);
      return;
    case WriteTarget::Kind::kGlobal: {
      auto& slot = globals[static_cast<std::size_t>(t.index)];
      slot.kind = FrameSlot::Kind::kScalar;
      slot.scalar = v;
      return;
    }
    case WriteTarget::Kind::kFrame: {
      auto& slot = static_cast<Frame*>(t.obj)
                       ->slots[static_cast<std::size_t>(t.index)];
      slot.kind = FrameSlot::Kind::kScalar;
      slot.scalar = v;
      return;
    }
    case WriteTarget::Kind::kLaneLocal: {
      auto* space = static_cast<LaneSpace*>(t.obj);
      space->locals[static_cast<std::int32_t>(t.index)]
                   [static_cast<std::size_t>(t.lane)] = v;
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

Value Impl::eval(const Expr& e, EvalCtx& ctx) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value::of_int(static_cast<const lang::IntLitExpr&>(e).value);
    case ExprKind::kFloatLit:
      return Value::of_float(static_cast<const lang::FloatLitExpr&>(e).value);
    case ExprKind::kStringLit:
      return Value::of_int(0);  // only meaningful inside print()
    case ExprKind::kIdent: {
      const auto& id = static_cast<const lang::IdentExpr&>(e);
      const Symbol* sym = id.symbol;
      if (sym == nullptr) runtime_error(&e, "unresolved identifier");
      if (sym->has_const_value) return Value::of_int(sym->const_value);
      if (sym->kind == SymbolKind::kIndexElem) {
        auto v = ctx.space->elem_value(sym, ctx.lane);
        if (!v) {
          runtime_error(&e, "index element '" + sym->name +
                                "' is not bound here");
        }
        return Value::of_int(*v);
      }
      auto target = resolve_lvalue(e, ctx);
      if (!target) return Value::of_int(0);
      if (target->kind == WriteTarget::Kind::kArray) {
        runtime_error(&e, "array '" + sym->name + "' used as a scalar");
      }
      return read_target(*target, ctx);
    }
    case ExprKind::kSubscript: {
      auto target = resolve_lvalue(e, ctx);
      if (!target) {
        ctx.undef = true;
        return Value::of_int(0);
      }
      auto* arr = static_cast<ArrayObj*>(target->obj);
      if (ctx.solve_mode && ctx.solve_targets != nullptr &&
          ctx.solve_targets->contains(arr) &&
          !arr->is_defined(target->index)) {
        ctx.undef = true;
        return Value::of_int(0);
      }
      classify_access(*arr, target->index, ctx);
      return read_target(*target, ctx);
    }
    case ExprKind::kCall:
      return eval_call(static_cast<const lang::CallExpr&>(e), ctx);
    case ExprKind::kUnary: {
      const auto& u = static_cast<const lang::UnaryExpr&>(e);
      Value v = eval(*u.operand, ctx);
      if (ctx.undef) return v;
      switch (u.op) {
        case UnaryOp::kNeg:
          return v.is_float ? Value::of_float(-v.f) : Value::of_int(-v.i);
        case UnaryOp::kNot:
          return Value::of_bool(!v.truthy());
        case UnaryOp::kBitNot:
          return Value::of_int(~v.as_int());
        case UnaryOp::kPlus:
          return v;
      }
      return v;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      if (b.op == BinaryOp::kLogAnd) {
        Value l = eval(*b.lhs, ctx);
        if (ctx.undef) return l;
        if (!l.truthy()) return Value::of_bool(false);
        Value r = eval(*b.rhs, ctx);
        return Value::of_bool(r.truthy());
      }
      if (b.op == BinaryOp::kLogOr) {
        Value l = eval(*b.lhs, ctx);
        if (ctx.undef) return l;
        if (l.truthy()) return Value::of_bool(true);
        Value r = eval(*b.rhs, ctx);
        return Value::of_bool(r.truthy());
      }
      Value l = eval(*b.lhs, ctx);
      if (ctx.undef) return l;
      Value r = eval(*b.rhs, ctx);
      if (ctx.undef) return r;
      return eval_binary_op(*this, b.op, l, r, e);
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const lang::AssignExpr&>(e);
      Value rhs = eval(*a.rhs, ctx);
      if (ctx.undef) return rhs;
      auto target = resolve_lvalue(*a.lhs, ctx);
      if (!target || ctx.undef) {
        ctx.undef = true;
        return rhs;
      }
      Value result = rhs;
      if (a.op != AssignOp::kAssign) {
        Value old = read_target(*target, ctx);
        if (target->kind == WriteTarget::Kind::kArray) {
          classify_access(*static_cast<ArrayObj*>(target->obj),
                          target->index, ctx);
        }
        BinaryOp op = BinaryOp::kAdd;
        switch (a.op) {
          case AssignOp::kAdd: op = BinaryOp::kAdd; break;
          case AssignOp::kSub: op = BinaryOp::kSub; break;
          case AssignOp::kMul: op = BinaryOp::kMul; break;
          case AssignOp::kDiv: op = BinaryOp::kDiv; break;
          case AssignOp::kMod: op = BinaryOp::kMod; break;
          case AssignOp::kAssign: break;
        }
        result = eval_binary_op(*this, op, old, rhs, e);
      }
      result = result.coerce(a.lhs->type.scalar);
      if (target->kind == WriteTarget::Kind::kArray) {
        auto* arr = static_cast<ArrayObj*>(target->obj);
        classify_access(*arr, target->index, ctx);
        if (arr->replicated() && ctx.stats != nullptr) {
          ++ctx.stats->broadcast;  // writes to a copied array broadcast
        }
      }
      write_value(*target, result, e, ctx);
      return result;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      Value c = eval(*t.cond, ctx);
      if (ctx.undef) return c;
      return eval(c.truthy() ? *t.then_expr : *t.else_expr, ctx);
    }
    case ExprKind::kReduce:
      return eval_reduce(static_cast<const lang::ReduceExpr&>(e), ctx);
    case ExprKind::kIncDec: {
      const auto& i = static_cast<const lang::IncDecExpr&>(e);
      auto target = resolve_lvalue(*i.operand, ctx);
      if (!target || ctx.undef) {
        ctx.undef = true;
        return Value::of_int(0);
      }
      Value old = read_target(*target, ctx);
      Value next = old.is_float
                       ? Value::of_float(old.f + (i.is_increment ? 1 : -1))
                       : Value::of_int(old.i + (i.is_increment ? 1 : -1));
      if (target->kind == WriteTarget::Kind::kArray) {
        classify_access(*static_cast<ArrayObj*>(target->obj), target->index,
                        ctx);
      }
      write_value(*target, next, e, ctx);
      return i.is_prefix ? next : old;
    }
  }
  return Value::of_int(0);
}

Value Impl::eval_reduce(const lang::ReduceExpr& e, EvalCtx& ctx) {
  // Iterate the Cartesian product of the sets, binding their elements in a
  // child space of the current lane (so inner bindings shadow outer ones,
  // paper §3.4).
  const auto& sets = e.index_set_syms;
  std::vector<const std::vector<std::int64_t>*> values;
  values.reserve(sets.size());
  std::int64_t prod = 1;
  for (const Symbol* s : sets) {
    values.push_back(&s->index_set->values);
    prod *= static_cast<std::int64_t>(s->index_set->values.size());
  }
  const bool flt = e.type.is_float();
  Value acc = reduce_identity_value(e.op, flt);
  bool any = false;

  // A one-lane child space per tuple.  Like a par expansion, the reduction
  // occupies a VP set of (outer lanes x product of its sets): the child's
  // geometry gains one dimension per set, so array accesses inside the
  // reduction are classified against the expanded shape (a d[i][k] read
  // from the O(N^3) relaxation is general-router traffic, exactly as on
  // the real machine).
  LaneSpace child;
  child.parent = ctx.space;
  child.frontend = ctx.space->frontend;
  child.parent_lane = {ctx.lane};
  child.dims = ctx.space->frontend ? std::vector<std::int64_t>{}
                                   : ctx.space->dims;
  const std::size_t base_dims = child.dims.size();
  for (const Symbol* s : sets) {
    child.dims.push_back(
        static_cast<std::int64_t>(s->index_set->values.size()));
  }
  child.geom_size = (ctx.space->frontend ? 1 : ctx.space->geom_size) * prod;
  child.vps = {0};
  child.coords.assign(child.dims.size(), 0);
  if (base_dims > 0) {
    std::copy(ctx.space->coords.begin() +
                  static_cast<std::ptrdiff_t>(ctx.lane *
                                              static_cast<std::int64_t>(
                                                  base_dims)),
              ctx.space->coords.begin() +
                  static_cast<std::ptrdiff_t>((ctx.lane + 1) *
                                              static_cast<std::int64_t>(
                                                  base_dims)),
              child.coords.begin());
  }
  const std::int64_t parent_vp =
      ctx.space->frontend
          ? 0
          : ctx.space->vps[static_cast<std::size_t>(ctx.lane)];
  for (const Symbol* s : sets) {
    child.elems.push_back(s->index_set->elem);
  }
  child.elem_vals.assign(sets.size(), 0);

  EvalCtx inner = ctx;
  inner.space = &child;
  inner.lane = 0;
  if (e.partition_optimized == 1) ++inner.suppress_comm;

  std::vector<std::size_t> pos(sets.size(), 0);
  for (std::int64_t tuple = 0; tuple < prod; ++tuple) {
    std::int64_t tuple_flat = 0;
    for (std::size_t k = 0; k < sets.size(); ++k) {
      child.elem_vals[k] = (*values[k])[pos[k]];
      child.coords[base_dims + k] = static_cast<std::int64_t>(pos[k]);
      tuple_flat =
          tuple_flat * static_cast<std::int64_t>(values[k]->size()) +
          static_cast<std::int64_t>(pos[k]);
    }
    child.vps[0] = parent_vp * prod + tuple_flat;
    // Evaluate every arm this tuple is enabled for; an element enabled for
    // several arms contributes once per arm (paper §3.2).
    bool enabled_any = false;
    for (const auto& arm : e.arms) {
      bool enabled = true;
      if (arm.pred) {
        inner.undef = false;
        Value p = eval(*arm.pred, inner);
        if (inner.undef) {
          ctx.undef = true;
          return acc;
        }
        enabled = p.truthy();
      }
      if (!enabled) continue;
      enabled_any = true;
      inner.undef = false;
      Value v = eval(*arm.value, inner);
      if (inner.undef) {
        ctx.undef = true;
        return acc;
      }
      if (e.op == lang::ReduceKind::kArb) {
        if (!any) acc = v;
      } else {
        acc = fold_reduce_value(e.op, acc, v);
      }
      any = true;
    }
    if (!enabled_any && e.others) {
      inner.undef = false;
      Value v = eval(*e.others, inner);
      if (inner.undef) {
        ctx.undef = true;
        return acc;
      }
      if (e.op == lang::ReduceKind::kArb) {
        if (!any) acc = v;
      } else {
        acc = fold_reduce_value(e.op, acc, v);
      }
      any = true;
    }
    // Advance the tuple odometer.
    for (std::size_t k = sets.size(); k-- > 0;) {
      if (++pos[k] < values[k]->size()) break;
      pos[k] = 0;
    }
  }
  // Merge comm stats gathered in the child context back (same object —
  // inner shares ctx.stats pointer, nothing to do).
  return flt ? Value::of_float(acc.as_float()) : acc;
}

Value Impl::eval_call(const lang::CallExpr& e, EvalCtx& ctx) {
  const Symbol* sym = e.symbol;
  if (sym == nullptr) runtime_error(&e, "unresolved call");

  if (sym->kind == SymbolKind::kBuiltin) {
    switch (static_cast<BuiltinId>(sym->builtin_id)) {
      case BuiltinId::kPower2: {
        auto k = eval(*e.args[0], ctx).as_int();
        if (ctx.undef) return Value::of_int(0);
        if (k < 0 || k > 62) {
          runtime_error(&e, "power2 argument out of range: " +
                                std::to_string(k));
        }
        return Value::of_int(std::int64_t{1} << k);
      }
      case BuiltinId::kRand:
        return Value::of_int(static_cast<std::int64_t>(
            lane_rng(ctx).next() >> 33));  // non-negative 31-bit, like rand()
      case BuiltinId::kSrand: {
        auto seed = eval(*e.args[0], ctx).as_int();
        if (!ctx.is_frontend()) {
          runtime_error(&e, "srand may only be called on the front end");
        }
        fe_rng.seed(static_cast<std::uint64_t>(seed));
        base_seed = static_cast<std::uint64_t>(seed);
        return Value::of_int(0);
      }
      case BuiltinId::kAbs: {
        Value v = eval(*e.args[0], ctx);
        if (ctx.undef) return v;
        return v.is_float ? Value::of_float(std::fabs(v.f))
                          : Value::of_int(v.i < 0 ? -v.i : v.i);
      }
      case BuiltinId::kMin2:
      case BuiltinId::kMax2: {
        Value a = eval(*e.args[0], ctx);
        Value b = eval(*e.args[1], ctx);
        if (ctx.undef) return a;
        const bool take_min =
            static_cast<BuiltinId>(sym->builtin_id) == BuiltinId::kMin2;
        if (a.is_float || b.is_float) {
          return Value::of_float(take_min
                                     ? std::min(a.as_float(), b.as_float())
                                     : std::max(a.as_float(), b.as_float()));
        }
        return Value::of_int(take_min ? std::min(a.i, b.i)
                                      : std::max(a.i, b.i));
      }
      case BuiltinId::kSwap: {
        auto ta = resolve_lvalue(*e.args[0], ctx);
        auto tb = resolve_lvalue(*e.args[1], ctx);
        if (!ta || !tb || ctx.undef) return Value::of_int(0);
        Value va = read_target(*ta, ctx);
        Value vb = read_target(*tb, ctx);
        if (ta->kind == WriteTarget::Kind::kArray) {
          classify_access(*static_cast<ArrayObj*>(ta->obj), ta->index, ctx);
        }
        if (tb->kind == WriteTarget::Kind::kArray) {
          classify_access(*static_cast<ArrayObj*>(tb->obj), tb->index, ctx);
        }
        write_value(*ta, vb, e, ctx);
        write_value(*tb, va, e, ctx);
        return Value::of_int(0);
      }
      case BuiltinId::kPrint: {
        std::string line;
        for (std::size_t k = 0; k < e.args.size(); ++k) {
          if (k != 0) line += ' ';
          if (e.args[k]->kind == ExprKind::kStringLit) {
            line += static_cast<const lang::StringLitExpr&>(*e.args[k]).value;
          } else {
            line += eval(*e.args[k], ctx).to_string();
          }
        }
        line += '\n';
        if (ctx.print_out != nullptr) {
          *ctx.print_out += line;
        } else {
          output += line;
        }
        return Value::of_int(0);
      }
    }
    return Value::of_int(0);
  }

  // User function.
  const FuncDecl* fn = sym->func;
  std::vector<Value> scalar_args;
  std::vector<ArrayPtr> array_args;
  std::vector<bool> is_array;
  for (std::size_t k = 0; k < e.args.size(); ++k) {
    const bool arr_param =
        k < fn->params.size() && fn->params[k].is_array;
    is_array.push_back(arr_param);
    if (arr_param) {
      if (e.args[k]->kind == ExprKind::kSubscript) {
        // Array slice (paper §3): fix the leading subscripts, view the
        // trailing dimensions.
        const auto& sub =
            static_cast<const lang::SubscriptExpr&>(*e.args[k]);
        const auto& id = static_cast<const lang::IdentExpr&>(*sub.base);
        ArrayPtr base = array_of(*id.symbol, ctx);
        std::int64_t offset = 0;
        for (std::size_t d = 0; d < sub.indices.size(); ++d) {
          const auto idx = eval(*sub.indices[d], ctx).as_int();
          if (ctx.undef) return Value::of_int(0);
          if (idx < 0 || idx >= base->dims()[d]) {
            runtime_error(e.args[k].get(),
                          "array slice subscript out of range for '" +
                              base->name() + "'");
          }
          std::int64_t stride = 1;
          for (std::size_t m = d + 1; m < base->dims().size(); ++m) {
            stride *= base->dims()[m];
          }
          offset += idx * stride;
        }
        std::vector<std::int64_t> view_dims(
            base->dims().begin() +
                static_cast<std::ptrdiff_t>(sub.indices.size()),
            base->dims().end());
        array_args.push_back(
            ArrayObj::make_slice(base, offset, std::move(view_dims)));
        continue;
      }
      const auto& id = static_cast<const lang::IdentExpr&>(*e.args[k]);
      array_args.push_back(array_of(*id.symbol, ctx));
    } else {
      scalar_args.push_back(eval(*e.args[k], ctx));
      if (ctx.undef) return Value::of_int(0);
    }
  }
  return call_function(*fn, std::move(scalar_args), std::move(array_args),
                       is_array, ctx);
}

// ---------------------------------------------------------------------------
// Static charging
// ---------------------------------------------------------------------------

std::uint64_t Impl::expr_weight(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kStringLit:
    case ExprKind::kIdent:
      return 1;
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      std::uint64_t w = 1;
      for (const auto& idx : s.indices) w += expr_weight(*idx);
      return w;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const lang::CallExpr&>(e);
      std::uint64_t w = 2;
      for (const auto& a : c.args) w += expr_weight(*a);
      if (c.symbol != nullptr && c.symbol->func != nullptr) w += 8;
      return w;
    }
    case ExprKind::kUnary:
      return 1 + expr_weight(*static_cast<const lang::UnaryExpr&>(e).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      return 1 + expr_weight(*b.lhs) + expr_weight(*b.rhs);
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const lang::AssignExpr&>(e);
      return 1 + expr_weight(*a.lhs) + expr_weight(*a.rhs);
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      return 1 + expr_weight(*t.cond) +
             std::max(expr_weight(*t.then_expr), expr_weight(*t.else_expr));
    }
    case ExprKind::kReduce:
      return 0;  // charged separately (charge_expr)
    case ExprKind::kIncDec:
      return 2;
  }
  return 1;
}

namespace {

// ---- Common-subexpression weighting (paper §4 code optimisation) ----
//
// A subexpression is pure when re-evaluating it cannot change anything:
// no assignments, no ++/--, no calls (rand() and user functions may have
// effects), no reductions (charged separately anyway).  Pure subtrees are
// fingerprinted structurally; the second occurrence of a fingerprint in
// the same statement costs nothing.

bool is_pure_expr(const lang::Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kIdent:
      return true;
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      for (const auto& idx : s.indices) {
        if (!is_pure_expr(*idx)) return false;
      }
      return true;
    }
    case ExprKind::kUnary:
      return is_pure_expr(*static_cast<const lang::UnaryExpr&>(e).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      return is_pure_expr(*b.lhs) && is_pure_expr(*b.rhs);
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      return is_pure_expr(*t.cond) && is_pure_expr(*t.then_expr) &&
             is_pure_expr(*t.else_expr);
    }
    default:
      return false;
  }
}

void fingerprint(const lang::Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      out += 'i';
      out += std::to_string(static_cast<const lang::IntLitExpr&>(e).value);
      return;
    case ExprKind::kFloatLit:
      out += 'f';
      out += std::to_string(static_cast<const lang::FloatLitExpr&>(e).value);
      return;
    case ExprKind::kIdent:
      out += 'n';
      out += static_cast<const lang::IdentExpr&>(e).name;
      return;
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      out += '[';
      fingerprint(*s.base, out);
      for (const auto& idx : s.indices) {
        out += ',';
        fingerprint(*idx, out);
      }
      out += ']';
      return;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const lang::UnaryExpr&>(e);
      out += 'u';
      out += lang::unary_op_spelling(u.op);
      fingerprint(*u.operand, out);
      return;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      out += '(';
      fingerprint(*b.lhs, out);
      out += lang::binary_op_spelling(b.op);
      fingerprint(*b.rhs, out);
      out += ')';
      return;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      out += '?';
      fingerprint(*t.cond, out);
      out += ':';
      fingerprint(*t.then_expr, out);
      out += ';';
      fingerprint(*t.else_expr, out);
      return;
    }
    default:
      out += '!';  // impure / unsupported: never deduplicated
      return;
  }
}

std::uint64_t weight_with_cse(const lang::Expr& e,
                              std::unordered_set<std::string>& seen) {
  if (is_pure_expr(e)) {
    std::string fp;
    fingerprint(e, fp);
    if (!seen.insert(std::move(fp)).second) return 0;  // already computed
  }
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kStringLit:
    case ExprKind::kIdent:
      return 1;
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      std::uint64_t w = 1;
      for (const auto& idx : s.indices) w += weight_with_cse(*idx, seen);
      return w;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const lang::CallExpr&>(e);
      std::uint64_t w = 2;
      for (const auto& a : c.args) w += weight_with_cse(*a, seen);
      if (c.symbol != nullptr && c.symbol->func != nullptr) w += 8;
      return w;
    }
    case ExprKind::kUnary:
      return 1 + weight_with_cse(
                     *static_cast<const lang::UnaryExpr&>(e).operand, seen);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      return 1 + weight_with_cse(*b.lhs, seen) +
             weight_with_cse(*b.rhs, seen);
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const lang::AssignExpr&>(e);
      return 1 + weight_with_cse(*a.lhs, seen) +
             weight_with_cse(*a.rhs, seen);
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      return 1 + weight_with_cse(*t.cond, seen) +
             std::max(weight_with_cse(*t.then_expr, seen),
                      weight_with_cse(*t.else_expr, seen));
    }
    case ExprKind::kReduce:
      return 0;  // charged separately
    case ExprKind::kIncDec:
      return 2;
  }
  return 1;
}

}  // namespace

std::uint64_t Impl::expr_weight_cse(const Expr& e) {
  std::unordered_set<std::string> seen;
  return weight_with_cse(e, seen);
}

namespace {

// Calls fn on every ReduceExpr in the tree (pre-order).
void for_each_reduce(const Expr& e,
                     const std::function<void(const lang::ReduceExpr&)>& fn) {
  switch (e.kind) {
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      for (const auto& idx : s.indices) for_each_reduce(*idx, fn);
      return;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const lang::CallExpr&>(e);
      for (const auto& a : c.args) for_each_reduce(*a, fn);
      return;
    }
    case ExprKind::kUnary:
      for_each_reduce(*static_cast<const lang::UnaryExpr&>(e).operand, fn);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      for_each_reduce(*b.lhs, fn);
      for_each_reduce(*b.rhs, fn);
      return;
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const lang::AssignExpr&>(e);
      for_each_reduce(*a.lhs, fn);
      for_each_reduce(*a.rhs, fn);
      return;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      for_each_reduce(*t.cond, fn);
      for_each_reduce(*t.then_expr, fn);
      for_each_reduce(*t.else_expr, fn);
      return;
    }
    case ExprKind::kReduce:
      fn(static_cast<const lang::ReduceExpr&>(e));
      return;
    case ExprKind::kIncDec:
      for_each_reduce(*static_cast<const lang::IncDecExpr&>(e).operand, fn);
      return;
    default:
      return;
  }
}

// True when the expression mentions only the given elements (and constants,
// arrays subscripted by them, arithmetic, ...) — helper for the processor
// optimisation's partition test.
bool mentions_only_elems(const Expr& e,
                         const std::vector<const Symbol*>& allowed,
                         bool* uses_one) {
  switch (e.kind) {
    case ExprKind::kIdent: {
      const auto& id = static_cast<const lang::IdentExpr&>(e);
      if (id.symbol != nullptr && id.symbol->kind == SymbolKind::kIndexElem) {
        for (const auto* a : allowed) {
          if (a == id.symbol) {
            *uses_one = true;
            return true;
          }
        }
        return false;
      }
      return true;
    }
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      for (const auto& idx : s.indices) {
        if (!mentions_only_elems(*idx, allowed, uses_one)) return false;
      }
      return true;
    }
    case ExprKind::kUnary:
      return mentions_only_elems(
          *static_cast<const lang::UnaryExpr&>(e).operand, allowed, uses_one);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      return mentions_only_elems(*b.lhs, allowed, uses_one) &&
             mentions_only_elems(*b.rhs, allowed, uses_one);
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const lang::CallExpr&>(e);
      for (const auto& a : c.args) {
        if (!mentions_only_elems(*a, allowed, uses_one)) return false;
      }
      return true;
    }
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool reduction_partitions(const lang::ReduceExpr& e,
                          const LaneSpace& outer_space) {
  // Outer elements: everything bound by the enclosing spaces.
  std::vector<const Symbol*> outer_elems;
  for (const LaneSpace* s = &outer_space; s != nullptr; s = s->parent) {
    for (const auto* el : s->elems) outer_elems.push_back(el);
  }
  if (outer_elems.empty()) return false;
  std::vector<const Symbol*> inner_elems;
  for (const Symbol* s : e.index_set_syms) {
    inner_elems.push_back(s->index_set->elem);
  }
  // Every arm must carry a predicate of the shape f(inner) == g(outer).
  if (e.arms.empty() || e.others != nullptr) return false;
  for (const auto& arm : e.arms) {
    if (!arm.pred || arm.pred->kind != ExprKind::kBinary) return false;
    const auto& p = static_cast<const lang::BinaryExpr&>(*arm.pred);
    if (p.op != BinaryOp::kEq) return false;
    bool uses_inner_l = false, uses_outer_l = false;
    bool uses_inner_r = false, uses_outer_r = false;
    bool l_inner_ok = mentions_only_elems(*p.lhs, inner_elems, &uses_inner_l);
    bool l_outer_ok = mentions_only_elems(*p.lhs, outer_elems, &uses_outer_l);
    bool r_inner_ok = mentions_only_elems(*p.rhs, inner_elems, &uses_inner_r);
    bool r_outer_ok = mentions_only_elems(*p.rhs, outer_elems, &uses_outer_r);
    bool lhs_inner_rhs_outer =
        l_inner_ok && uses_inner_l && r_outer_ok && uses_outer_r;
    bool lhs_outer_rhs_inner =
        l_outer_ok && uses_outer_l && r_inner_ok && uses_inner_r;
    if (!lhs_inner_rhs_outer && !lhs_outer_rhs_inner) return false;
    // The value itself must not mix in outer elements beyond the pred.
    bool dummy = false;
    if (!mentions_only_elems(*arm.value, inner_elems, &dummy)) return false;
  }
  return true;
}

void Impl::charge_expr(const Expr& e, std::int64_t geom_size, bool frontend,
                       const LaneSpace* outer_space, cm::Plan* record,
                       bool planned) {
  // Charge helpers that also append to the plan being recorded (if any):
  // the recorded recipe must replay the exact same machine charges.
  auto fe_charge = [&](std::uint64_t n) {
    machine.charge_frontend(n);
    if (record != nullptr) {
      record->charges.push_back({cm::PlanCharge::Kind::kFrontend,
                                 static_cast<std::int64_t>(n), 1});
    }
  };
  auto vec_charge = [&](std::int64_t n, std::uint64_t m) {
    machine.charge_vector_op(n, m, planned);
    if (record != nullptr) {
      record->charges.push_back({cm::PlanCharge::Kind::kVectorOp, n,
                                 static_cast<std::int64_t>(m)});
    }
  };
  auto router_charge = [&](std::int64_t n, std::uint64_t m) {
    machine.charge_router(n, m);
    if (record != nullptr) {
      record->charges.push_back({cm::PlanCharge::Kind::kRouter, n,
                                 static_cast<std::int64_t>(m)});
    }
  };
  auto reduce_charge = [&](std::int64_t n, std::int64_t m) {
    machine.charge_reduce(n, m, planned);
    if (record != nullptr) {
      record->charges.push_back({cm::PlanCharge::Kind::kReduce, n, m});
    }
  };

  const std::uint64_t w = opts.common_subexpression_elimination
                              ? expr_weight_cse(e)
                              : expr_weight(e);
  if (frontend) {
    fe_charge(w);
  } else {
    vec_charge(geom_size, w);
  }
  for_each_reduce(e, [&](const lang::ReduceExpr& red) {
    std::int64_t prod = 1;
    for (const Symbol* s : red.index_set_syms) {
      prod *= static_cast<std::int64_t>(s->index_set->values.size());
    }
    std::uint64_t arm_w = 0;
    for (const auto& arm : red.arms) {
      if (arm.pred) arm_w += expr_weight(*arm.pred);
      arm_w += expr_weight(*arm.value);
    }
    if (red.others) arm_w += expr_weight(*red.others);
    if (arm_w == 0) arm_w = 1;

    std::int64_t red_geom = frontend ? prod : geom_size * prod;
    // Processor optimisation (paper §4): a reduction whose predicates
    // partition its inputs across the outer lanes needs only `prod` VPs —
    // each input element computes its destination and issues one
    // send-with-combine — instead of lanes x prod VPs each re-reading the
    // inputs.  The annotation also tells the evaluator not to double-count
    // the (now nonexistent) per-lane remote reads.
    const bool optimised = !frontend && opts.processor_optimization &&
                           outer_space != nullptr &&
                           reduction_partitions(red, *outer_space);
    const_cast<lang::ReduceExpr&>(red).partition_optimized =
        optimised ? 1 : 0;
    if (record != nullptr) {
      record->annotations.push_back({&red, optimised});
    }
    if (optimised) {
      vec_charge(prod, arm_w);
      router_charge(prod, static_cast<std::uint64_t>(prod));
      return;  // send-with-combine replaces the log-depth scan
    }
    vec_charge(red_geom, arm_w);
    reduce_charge(red_geom, prod);
    // Nested reductions inside the arms are charged at the expanded size.
    for (const auto& arm : red.arms) {
      if (arm.pred) {
        for_each_reduce(*arm.pred, [&](const lang::ReduceExpr& inner) {
          std::int64_t iprod = 1;
          for (const Symbol* s : inner.index_set_syms) {
            iprod *= static_cast<std::int64_t>(s->index_set->values.size());
          }
          vec_charge(red_geom * iprod, 1);
          reduce_charge(red_geom * iprod, iprod);
        });
      }
      for_each_reduce(*arm.value, [&](const lang::ReduceExpr& inner) {
        std::int64_t iprod = 1;
        for (const Symbol* s : inner.index_set_syms) {
          iprod *= static_cast<std::int64_t>(s->index_set->values.size());
        }
        vec_charge(red_geom * iprod, 1);
        reduce_charge(red_geom * iprod, iprod);
      });
    }
  });
}

std::uint64_t Impl::plan_key(const Expr& e, const LaneSpace& space) const {
  // Signature: statement site + declaration/mapping epoch + geometry +
  // enclosing element structure + every reduce index-set size + the cost
  // flags the recipe was recorded under.  Element *values* are deliberately
  // excluded: a seq loop rebinding its tuple each iteration must still hit.
  // Sites and element symbols enter as stable node ids rather than raw
  // pointers, so keys survive durable-snapshot serialization across
  // processes (docs/ROBUSTNESS.md "Durable checkpoints & resume").
  std::uint64_t h = 0x243f6a8885a308d3ull;
  h = cm::PlanCache::mix(h, node_id(&e));
  h = cm::PlanCache::mix(h, plan_epoch_);
  h = cm::PlanCache::mix(h, (opts.common_subexpression_elimination ? 1u : 0u) |
                                (opts.processor_optimization ? 2u : 0u));
  h = cm::PlanCache::mix(h, static_cast<std::uint64_t>(space.geom_size));
  for (const LaneSpace* s = &space; s != nullptr; s = s->parent) {
    for (std::int64_t d : s->dims) {
      h = cm::PlanCache::mix(h, static_cast<std::uint64_t>(d));
    }
    for (const Symbol* el : s->elems) {
      h = cm::PlanCache::mix(h, node_id(el));
    }
  }
  auto mix_sets = [&h](const lang::ReduceExpr& red) {
    for (const Symbol* s : red.index_set_syms) {
      h = cm::PlanCache::mix(h, s->index_set->values.size());
    }
  };
  for_each_reduce(e, [&](const lang::ReduceExpr& red) {
    mix_sets(red);
    for (const auto& arm : red.arms) {
      if (arm.pred) for_each_reduce(*arm.pred, mix_sets);
      for_each_reduce(*arm.value, mix_sets);
    }
  });
  return h;
}

void Impl::charge_expr_planned(const Expr& e, LaneSpace& space, bool rider) {
  const std::uint64_t key = plan_key(e, space);
  if (cm::Plan* plan = plan_cache_.find(key)) {
    // Re-apply the recorded partition decisions before replaying so the
    // evaluator classifies accesses exactly as it did when recording.
    for (const auto& a : plan->annotations) {
      const_cast<lang::ReduceExpr*>(
          static_cast<const lang::ReduceExpr*>(a.site))
          ->partition_optimized = a.optimized ? 1 : 0;
    }
    cm::PlanCache::replay(machine, *plan);
    return;
  }
  // Miss: charge normally while recording, then cache the recipe.  Rider
  // members of a fused group share their group's front-end issue even on
  // first execution, so they charge at the planned overhead while
  // recording the same overhead-independent recipe.  A TransientFault
  // mid-recording simply abandons the local plan; the retry re-records.
  cm::Plan plan;
  charge_expr(e, space.geom_size, /*frontend=*/false, &space, &plan, rider);
  plan_cache_.insert(key, std::move(plan));
}

}  // namespace detail
}  // namespace uc::vm
