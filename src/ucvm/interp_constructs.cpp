// Parallel execution: lane-space expansion, synchronous statement
// execution with conflict-checked commits, and the par / seq / oneof
// constructs (solve lives in interp_solve.cpp).
#include <algorithm>

#include "support/error.hpp"
#include "support/str.hpp"
#include "uclang/access.hpp"
#include "ucvm/checkpoint.hpp"
#include "ucvm/interp_detail.hpp"
#include "ucvm/kernel/kernel.hpp"
#include "xform/affine.hpp"

namespace uc::vm::detail {

using lang::ScBlock;
using lang::StmtKind;
using lang::UcConstructStmt;
using lang::UcOp;

// ---------------------------------------------------------------------------
// Expansion
// ---------------------------------------------------------------------------

std::unique_ptr<LaneSpace> Impl::expand(
    LaneSpace& parent, const std::vector<std::int64_t>& active,
    const std::vector<Symbol*>& sets) {
  auto child = std::make_unique<LaneSpace>();
  child->parent = &parent;
  child->frontend = false;

  std::int64_t prod = 1;
  std::vector<const std::vector<std::int64_t>*> values;
  for (const Symbol* s : sets) {
    child->elems.push_back(s->index_set->elem);
    values.push_back(&s->index_set->values);
    prod *= static_cast<std::int64_t>(s->index_set->values.size());
  }
  // Geometry: the parent's dims extended by the set sizes (the front end
  // contributes no dims).
  child->dims = parent.frontend ? std::vector<std::int64_t>{} : parent.dims;
  for (const Symbol* s : sets) {
    child->dims.push_back(
        static_cast<std::int64_t>(s->index_set->values.size()));
  }
  child->geom_size = (parent.frontend ? 1 : parent.geom_size) * prod;

  const std::size_t k_sets = sets.size();
  const std::size_t n_dims = child->dims.size();
  const auto lanes = static_cast<std::int64_t>(active.size()) * prod;
  child->elem_vals.resize(static_cast<std::size_t>(lanes) * k_sets);
  child->parent_lane.resize(static_cast<std::size_t>(lanes));
  child->vps.resize(static_cast<std::size_t>(lanes));
  child->coords.resize(static_cast<std::size_t>(lanes) * n_dims);

  std::int64_t out = 0;
  std::vector<std::size_t> pos(k_sets, 0);
  for (std::int64_t pl : active) {
    std::fill(pos.begin(), pos.end(), 0);
    const std::int64_t parent_vp = parent.frontend ? 0 : parent.vps[pl];
    const std::size_t parent_dims = parent.frontend ? 0 : parent.dims.size();
    for (std::int64_t t = 0; t < prod; ++t, ++out) {
      child->parent_lane[static_cast<std::size_t>(out)] = pl;
      // Element values + tuple flat position.
      std::int64_t tuple_flat = 0;
      for (std::size_t k = 0; k < k_sets; ++k) {
        child->elem_vals[static_cast<std::size_t>(out) * k_sets + k] =
            (*values[k])[pos[k]];
        tuple_flat = tuple_flat * static_cast<std::int64_t>(
                                      values[k]->size()) +
                     static_cast<std::int64_t>(pos[k]);
      }
      child->vps[static_cast<std::size_t>(out)] = parent_vp * prod + tuple_flat;
      // Coordinates: parent coords ++ tuple positions.
      auto* dst =
          &child->coords[static_cast<std::size_t>(out) * n_dims];
      for (std::size_t d = 0; d < parent_dims; ++d) {
        dst[d] = parent.coords[static_cast<std::size_t>(pl) * parent_dims + d];
      }
      for (std::size_t k = 0; k < k_sets; ++k) {
        dst[parent_dims + k] = static_cast<std::int64_t>(pos[k]);
      }
      for (std::size_t k = k_sets; k-- > 0;) {
        if (++pos[k] < values[k]->size()) break;
        pos[k] = 0;
      }
    }
  }
  return child;
}

// ---------------------------------------------------------------------------
// Synchronous evaluation over lanes
// ---------------------------------------------------------------------------

std::vector<std::pair<std::int64_t, std::int64_t>> shard_lane_ranges(
    const LaneSpace& space, const std::vector<std::int64_t>& active,
    const cm::ShardLayout& layout) {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(
      layout.shard_count());
  const auto n = static_cast<std::int64_t>(active.size());
  std::int64_t k = 0;
  for (unsigned s = 0; s < layout.shard_count(); ++s) {
    const std::int64_t lo = k;
    // First position whose VP lies past shard s's block (VPs are monotone
    // along the active list, see interp_detail.hpp).
    const auto bound = layout.end(s);
    k = std::lower_bound(active.begin() + lo, active.begin() + n, bound,
                         [&space](std::int64_t lane, std::int64_t b) {
                           return space.vps[static_cast<std::size_t>(lane)] <
                                  b;
                         }) -
        active.begin();
    ranges[s] = {lo, k};
  }
  return ranges;
}

std::vector<Value> Impl::eval_lanes(const Expr& expr, LaneSpace& space,
                                    const std::vector<std::int64_t>& active,
                                    Frame* frame, bool commit) {
  check_deadline(nullptr);
  ckpt->note_statement();
  maybe_die();  // deterministic pre-statement kill point (tools/soak.sh)
  ++stmt_counter;
  const std::uint64_t stmt_id = stmt_counter;

  // Statement-level attribution scope.  Both engines execute inside it
  // (the bytecode fast path below and the walk fallback alike), so the
  // per-site deltas are engine-independent wherever the charges are.
  ProfScope prof_scope(*this, &expr, "stmt", expr.range);

  auto attempt = [&]() -> std::vector<Value> {
    // Charge the static cost first: this also annotates reductions with the
    // processor-optimisation decision the evaluator consults.  With fusion
    // on (bytecode engine only) the charge goes through the
    // communication-plan cache: a repeat execution of the same statement
    // signature replays the recorded recipe at the reduced plan issue
    // overhead instead of re-deriving it.
    if (opts.fuse && opts.engine != ExecEngine::kWalk) {
      charge_expr_planned(expr, space, /*rider=*/false);
    } else {
      charge_expr(expr, space.geom_size, /*frontend=*/false, &space);
    }

    // Fast path: compile the statement once into lane-kernel bytecode and
    // run it allocation-free; statements the lowering/link does not cover
    // fall through to the reference tree walk below (bit-identical results).
    // The native tier rides this same path: run_lanes_pooled diverts the
    // lane loop to the compiled .so when it can (docs/VM.md "Native tier").
    if (opts.engine != ExecEngine::kWalk) {
      if (auto fast = kernel_engine().try_run(expr, space, active, frame,
                                              stmt_id, commit,
                                              /*optimize=*/opts.fuse)) {
        if (prof != nullptr) prof->note_engine(/*bytecode=*/true);
        return std::move(*fast);
      }
    }
    if (prof != nullptr) prof->note_engine(/*bytecode=*/false);

    const auto n = static_cast<std::int64_t>(active.size());
    std::vector<Value> results(static_cast<std::size_t>(n));
    std::vector<std::vector<Write>> writes(static_cast<std::size_t>(n));
    std::vector<std::string> prints(static_cast<std::size_t>(n));
    std::vector<AccessStats> stats(static_cast<std::size_t>(n));

    const auto run_range = [&](std::int64_t b, std::int64_t e_) {
      for (std::int64_t k = b; k < e_; ++k) {
        EvalCtx ctx;
        ctx.vm = this;
        ctx.space = &space;
        ctx.lane = active[static_cast<std::size_t>(k)];
        ctx.frame = frame;
        ctx.statement_frame = frame;
        ctx.writes = &writes[static_cast<std::size_t>(k)];
        ctx.stats = &stats[static_cast<std::size_t>(k)];
        ctx.print_out = &prints[static_cast<std::size_t>(k)];
        // Per-lane RNG seeded from the statement id captured above so
        // all lanes of this statement share one instance id.
        ctx.rng_seeded = false;
        ctx.rng.seed(0);
        // stmt_counter may move under recursion via eval (reductions do
        // not call eval_lanes, so in practice it is stable); use the
        // captured id for the seed.
        const auto vp =
            static_cast<std::uint64_t>(space.vps[ctx.lane]);
        ctx.rng.seed(base_seed ^ (stmt_id * 0x9e3779b97f4a7c15ull) ^
                     (vp + 0x5851f42d4c957f2dull));
        ctx.rng_seeded = true;
        results[static_cast<std::size_t>(k)] = eval(expr, ctx);
      }
    };
    const unsigned shards = machine.shard_count();
    if (shards > 1 && n > cm::ThreadPool::kInlineCutoff) {
      // Sharded dispatch (docs/SHARDING.md): each shard's contiguous
      // slice of the active list goes to exactly one worker.  Per-lane
      // results/writes/stats land in lane-indexed slots either way, so
      // the commit below is dispatch-order independent.
      const cm::ShardLayout layout(space.geom_size, shards);
      const auto ranges = shard_lane_ranges(space, active, layout);
      auto& sstats = machine.shard_stats();
      machine.pool().for_shards(shards, [&](unsigned, unsigned s) {
        const auto [b, e_] = ranges[s];
        if (b >= e_) return;
        run_range(b, e_);
        sstats[s].ops += 1;
        sstats[s].intra_lanes += static_cast<std::uint64_t>(e_ - b);
      });
    } else {
      machine.pool().parallel_for(0, n, run_range, /*min_grain=*/64);
    }

    // Merge dynamic comm stats and charge them on the issuing thread.
    AccessStats total;
    for (const auto& s : stats) total.merge(s);
    charge_dynamic_stats(total, space.geom_size);

    if (commit) commit_writes(writes);
    for (auto& p : prints) output += p;
    return results;
  };

  // Statement-level transactional retry (docs/ROBUSTNESS.md): every charge
  // that can raise a TransientFault happens before the commit in both
  // engines, so catching here leaves all program state exactly as it was at
  // statement entry — re-running the same stmt_id is bit-identical to a
  // fault-free execution.  Only active when checkpoint recovery is enabled;
  // otherwise the fault escalates (and aborts the run with a hint).
  for (;;) {
    try {
      return attempt();
    } catch (const support::TransientFault&) {
      if (!ckpt->enabled() || !ckpt->consume_replay()) throw;
      machine.note_rollback();
    }
  }
}

void Impl::charge_dynamic_stats(const AccessStats& total,
                                std::int64_t geom_size) {
  if (total.news > 0) machine.charge_news(geom_size, total.news_max_hops);
  if (total.router > 0) machine.charge_router(geom_size, total.router);
  if (total.broadcast > 0) machine.charge_broadcast(geom_size);
  if (total.frontend > 0) machine.charge_frontend(total.frontend);
}

// ---------------------------------------------------------------------------
// Statement fusion (docs/VM.md "Fusion")
// ---------------------------------------------------------------------------

namespace {

// Exact per-dimension affine equality — the shape of cross-statement
// dependence the fused engine's store-load forwarding can satisfy.
bool forms_equal(const xform::LinearForm& a, const xform::LinearForm& b) {
  if (!a.exact || !b.exact || a.constant != b.constant) return false;
  for (const auto& t : a.terms) {
    if (b.coeff_of(t.sym) != t.coeff) return false;
  }
  for (const auto& t : b.terms) {
    if (a.coeff_of(t.sym) != t.coeff) return false;
  }
  return true;
}

bool same_affine_subscript(const lang::SubscriptExpr* a,
                           const lang::SubscriptExpr* b) {
  if (a == nullptr || b == nullptr) return false;
  if (a->indices.size() != b->indices.size()) return false;
  for (std::size_t d = 0; d < a->indices.size(); ++d) {
    if (!forms_equal(xform::linearize(*a->indices[d]),
                     xform::linearize(*b->indices[d]))) {
      return false;
    }
  }
  return true;
}

// Whether a statement can join a fused group at all.
bool member_fusable(const lang::AccessSet& s) {
  if (s.has_user_call) return false;  // opaque effects
  for (const auto& a : s.accesses) {
    if (a.is_write && a.reduce != nullptr) return false;
  }
  return true;
}

// Whether member j (executing after member i in the unfused order) can
// share a kernel with i.  Conservative where it must be: the bytecode
// optimizer's forwarding check is the final authority, so a pair admitted
// here that turns out unsafe at the register level still compiles to
// nothing and runs unfused.
//   - i-written scalar touched by j at all: j would see a stale value (reads
//     are pre-group) or trip the merged commit's conflict check (writes).
//   - write-write on an array: sequential overwrite is legal unfused but a
//     conflict under the single merged commit.
//   - i-written array read by j: only when every such read uses the exact
//     same affine subscript as an i-write, so per-lane forwarding covers it
//     (a read under a reduction gathers other lanes' elements — blocked).
bool pair_fusable(const lang::AccessSet& i, const lang::AccessSet& j) {
  for (const auto& wi : i.accesses) {
    if (!wi.is_write) continue;
    for (const auto& aj : j.accesses) {
      if (aj.base != wi.base) continue;
      if (wi.subscript == nullptr) return false;  // scalar hazard
      if (aj.is_write) return false;              // array write-write
      if (aj.reduce != nullptr) return false;     // gathered read
      if (!same_affine_subscript(wi.subscript, aj.subscript)) return false;
    }
  }
  return true;
}

}  // namespace

const std::vector<Impl::FusionSeg>& Impl::fusion_segments(
    const lang::CompoundStmt& s) {
  auto it = fusion_segments_.find(&s);
  if (it != fusion_segments_.end()) return it->second;

  const std::size_t n = s.body.size();
  std::vector<lang::AccessSet> acc(n);
  std::vector<bool> ok(n, false);
  for (std::size_t k = 0; k < n; ++k) {
    if (s.body[k]->kind != StmtKind::kExpr) continue;
    lang::collect_accesses(*s.body[k], acc[k]);
    ok[k] = member_fusable(acc[k]);
  }

  std::vector<FusionSeg> segs;
  std::size_t k = 0;
  while (k < n) {
    if (!ok[k]) {
      segs.push_back({k, 1, false});
      ++k;
      continue;
    }
    // Greedy: extend while the next statement is safe against every member
    // already in the group.
    std::size_t end = k + 1;
    while (end < n && ok[end]) {
      bool safe = true;
      for (std::size_t i = k; i < end && safe; ++i) {
        safe = pair_fusable(acc[i], acc[end]);
      }
      if (!safe) break;
      ++end;
    }
    segs.push_back({k, end - k, end - k >= 2});
    k = end;
  }
  return fusion_segments_[&s] = std::move(segs);
}

bool Impl::exec_fused_group(const lang::CompoundStmt& s, std::size_t begin,
                            std::size_t count, LaneSpace& space,
                            const std::vector<std::int64_t>& active,
                            Frame* frame) {
  std::vector<const Expr*> stmts(count);
  for (std::size_t k = 0; k < count; ++k) {
    stmts[k] =
        static_cast<const lang::ExprStmt&>(*s.body[begin + k]).expr.get();
  }
  auto& eng = kernel_engine();
  // Compile (cached) + link.  Touches no interpreter state on failure, so
  // declining here falls back cleanly to statement-at-a-time execution.
  if (!eng.prepare_group(stmts.data(), count, space, frame)) return false;

  check_deadline(nullptr);
  // The group is one transactional unit but still `count` statements for
  // checkpoint pacing and id assignment.
  for (std::size_t k = 0; k < count; ++k) ckpt->note_statement();
  maybe_die();  // deterministic pre-group kill point (tools/soak.sh)
  const std::uint64_t first_stmt_id = stmt_counter + 1;
  stmt_counter += count;

  auto attempt = [&]() {
    // Static charges, one per member under its own profiler scope so
    // per-site cycles keep summing to the aggregate.  Member 0 pays (or
    // plan-caches) the full front-end issue; riders share it and charge at
    // the reduced planned overhead from their first execution.
    for (std::size_t k = 0; k < count; ++k) {
      ProfScope prof_scope(*this, stmts[k], "stmt", stmts[k]->range);
      charge_expr_planned(*stmts[k], space, /*rider=*/k != 0);
    }
    // One pool dispatch for the whole group; host time lands on member 0.
    std::vector<AccessStats> member_stats;
    {
      ProfScope prof_scope(*this, stmts[0], "stmt", stmts[0]->range);
      eng.run_group(space, active, frame, first_stmt_id, member_stats);
    }
    for (std::size_t k = 0; k < count; ++k) {
      ProfScope prof_scope(*this, stmts[k], "stmt", stmts[k]->range);
      charge_dynamic_stats(member_stats[k], space.geom_size);
      if (prof != nullptr) {
        prof->note_engine(/*bytecode=*/true);
        prof->note_fused();
      }
    }
    // All faultable charges are behind us: apply the buffered writes of
    // every member in one conflict-checked commit.
    eng.commit_group();
  };
  for (;;) {
    try {
      attempt();
      return true;
    } catch (const support::TransientFault&) {
      if (!ckpt->enabled() || !ckpt->consume_replay()) throw;
      machine.note_rollback();
    }
  }
}

void Impl::commit_begin(std::size_t expected_writes) {
  commit_seen_.begin(expected_writes);
}

void Impl::commit_check(const Write& w) {
  const CommitSeen::Slot* seen = commit_seen_.check_insert(w);
  if (seen != nullptr && !(seen->value == w.value)) {
    std::string what = "conflicting parallel assignment";
    if (w.target.kind == WriteTarget::Kind::kArray) {
      auto* arr = static_cast<ArrayObj*>(w.target.obj);
      std::int64_t coords[8];
      arr->unflatten(w.target.index, coords);
      what += " to " + arr->name();
      for (std::size_t d = 0; d < arr->dims().size(); ++d) {
        what += "[" + std::to_string(coords[d]) + "]";
      }
    }
    what += ": values " + seen->value.to_string() + " and " +
            w.value.to_string() +
            " (each variable may be assigned at most one value, "
            "paper §3.4)";
    runtime_error(w.where, what);
  }
}

void Impl::commit_writes(std::vector<std::vector<Write>>& per_lane) {
  std::size_t total = 0;
  for (const auto& lane_writes : per_lane) total += lane_writes.size();
  commit_begin(total);
  for (auto& lane_writes : per_lane) {
    for (auto& w : lane_writes) commit_check(w);
  }
  for (auto& lane_writes : per_lane) {
    for (auto& w : lane_writes) apply_write(w.target, w.value);
  }
}

std::vector<std::int64_t> Impl::filter_lanes(
    const Expr& pred, LaneSpace& space,
    const std::vector<std::int64_t>& candidates, Frame* frame) {
  auto vals = eval_lanes(pred, space, candidates, frame);
  std::vector<std::int64_t> enabled;
  enabled.reserve(candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (vals[k].truthy()) enabled.push_back(candidates[k]);
  }
  return enabled;
}

// ---------------------------------------------------------------------------
// Parallel statement execution
// ---------------------------------------------------------------------------

void Impl::exec_parallel_stmt(const Stmt& stmt, LaneSpace& space,
                              const std::vector<std::int64_t>& active,
                              Frame* frame) {
  if (active.empty()) return;
  switch (stmt.kind) {
    case StmtKind::kEmpty:
    case StmtKind::kIndexSetDecl:
      return;
    case StmtKind::kExpr: {
      const auto& s = static_cast<const lang::ExprStmt&>(stmt);
      (void)eval_lanes(*s.expr, space, active, frame);
      return;
    }
    case StmtKind::kCompound: {
      const auto& s = static_cast<const lang::CompoundStmt&>(stmt);
      if (opts.fuse && opts.engine != ExecEngine::kWalk &&
          s.body.size() > 1) {
        // Fusion (docs/VM.md): runs of provably independent expression
        // statements execute as one kernel; anything the compiler declines
        // falls back to statement-at-a-time execution below.
        for (const FusionSeg& seg : fusion_segments(s)) {
          if (seg.fusable &&
              exec_fused_group(s, seg.begin, seg.count, space, active,
                               frame)) {
            continue;
          }
          for (std::size_t k = 0; k < seg.count; ++k) {
            exec_parallel_stmt(*s.body[seg.begin + k], space, active, frame);
          }
        }
        return;
      }
      for (const auto& child : s.body) {
        exec_parallel_stmt(*child, space, active, frame);
      }
      return;
    }
    case StmtKind::kVarDecl: {
      const auto& s = static_cast<const lang::VarDeclStmt&>(stmt);
      for (const auto& d : s.declarators) {
        if (d.symbol == nullptr) continue;
        auto& store = space.locals[d.symbol->slot];
        store.assign(static_cast<std::size_t>(space.lane_count()),
                     Value::of_int(0).coerce(d.symbol->type.scalar));
        if (d.init) {
          auto vals = eval_lanes(*d.init, space, active, frame);
          for (std::size_t k = 0; k < active.size(); ++k) {
            store[static_cast<std::size_t>(active[k])] =
                vals[k].coerce(d.symbol->type.scalar);
          }
        }
      }
      return;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const lang::IfStmt&>(stmt);
      auto vals = eval_lanes(*s.cond, space, active, frame);
      std::vector<std::int64_t> then_lanes, else_lanes;
      for (std::size_t k = 0; k < active.size(); ++k) {
        (vals[k].truthy() ? then_lanes : else_lanes).push_back(active[k]);
      }
      if (!then_lanes.empty()) {
        exec_parallel_stmt(*s.then_stmt, space, then_lanes, frame);
      }
      if (s.else_stmt && !else_lanes.empty()) {
        exec_parallel_stmt(*s.else_stmt, space, else_lanes, frame);
      }
      return;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const lang::WhileStmt&>(stmt);
      // Data-parallel while: the active set narrows monotonically.
      std::vector<std::int64_t> live = active;
      std::int64_t guard = 0;
      for (;;) {
        check_deadline(&stmt);
        live = filter_lanes(*s.cond, space, live, frame);
        machine.charge_global_or();
        if (live.empty()) return;
        exec_parallel_stmt(*s.body, space, live, frame);
        if (opts.max_iterations > 0 && ++guard > opts.max_iterations) {
          runtime_error(
              &stmt,
              support::format("while loop inside a parallel construct "
                              "exceeded the iteration limit (%lld); raise "
                              "or disable it with --max-iterations",
                              static_cast<long long>(opts.max_iterations)));
        }
      }
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const lang::ForStmt&>(stmt);
      if (s.init) exec_parallel_stmt(*s.init, space, active, frame);
      std::vector<std::int64_t> live = active;
      std::int64_t guard = 0;
      for (;;) {
        check_deadline(&stmt);
        if (s.cond) {
          live = filter_lanes(*s.cond, space, live, frame);
          machine.charge_global_or();
          if (live.empty()) return;
        }
        exec_parallel_stmt(*s.body, space, live, frame);
        if (s.step) (void)eval_lanes(*s.step, space, live, frame);
        if (opts.max_iterations > 0 && ++guard > opts.max_iterations) {
          runtime_error(
              &stmt,
              support::format("for loop inside a parallel construct "
                              "exceeded the iteration limit (%lld); raise "
                              "or disable it with --max-iterations",
                              static_cast<long long>(opts.max_iterations)));
        }
        if (!s.cond) {
          runtime_error(&stmt,
                        "for loop without a condition inside a parallel "
                        "construct never terminates");
        }
      }
    }
    case StmtKind::kUcConstruct: {
      const auto& s = static_cast<const UcConstructStmt&>(stmt);
      exec_nested_construct(s, space, active, frame);
      return;
    }
    case StmtKind::kReturn:
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      runtime_error(&stmt,
                    "return/break/continue cannot appear directly inside a "
                    "parallel construct body");
    case StmtKind::kMapSection:
      runtime_error(&stmt, "map sections cannot run in a parallel context");
  }
}

// ---------------------------------------------------------------------------
// The constructs
// ---------------------------------------------------------------------------

void Impl::exec_construct(const UcConstructStmt& stmt, EvalCtx& ctx) {
  std::vector<std::int64_t> active;
  const auto n = ctx.space->lane_count();
  active.reserve(static_cast<std::size_t>(n));
  if (ctx.is_frontend()) {
    active.push_back(0);
  } else {
    for (std::int64_t l = 0; l < n; ++l) active.push_back(l);
  }
  exec_nested_construct(stmt, *ctx.space, active, ctx.frame);
}

void Impl::exec_nested_construct(const UcConstructStmt& stmt,
                                 LaneSpace& parent,
                                 const std::vector<std::int64_t>& active,
                                 Frame* frame) {
  if (stmt.index_set_syms.size() != stmt.index_sets.size()) {
    runtime_error(&stmt, "construct has unresolved index sets");
  }
  const char* kind = "par";
  switch (stmt.op) {
    case UcOp::kSeq: kind = "seq"; break;
    case UcOp::kPar: kind = stmt.starred ? "*par" : "par"; break;
    case UcOp::kOneof: kind = stmt.starred ? "*oneof" : "oneof"; break;
    case UcOp::kSolve: kind = stmt.starred ? "*solve" : "solve"; break;
  }
  ProfScope prof_scope(*this, &stmt, kind, stmt.range);
  check_deadline(&stmt);

  // Lane-space expansion is hoisted out of the replay loop: it is
  // deterministic and chargeless (it can never fault), and a restored
  // checkpoint's lane-local snapshots point into this space, which must
  // stay alive across replays.
  std::unique_ptr<LaneSpace> child;
  if (stmt.op != UcOp::kSeq) {
    child = expand(parent, active, stmt.index_set_syms);
  }

  // Construct-level recovery anchor (docs/ROBUSTNESS.md).  solve must
  // capture at entry: its rounds carry fired-equation bookkeeping that only
  // an entry snapshot can rewind (and its per-equation commits bypass the
  // eval_lanes statement-retry net).
  RecoveryScope rscope(*this, &stmt);
  rscope.safe_point(child != nullptr ? child.get() : &parent, frame,
                    /*mandatory=*/stmt.op == UcOp::kSolve && !stmt.starred);

  for (;;) {
    try {
      switch (stmt.op) {
        case UcOp::kSeq: {
          exec_seq(stmt, parent, active, frame, rscope);
          return;
        }
        case UcOp::kPar: {
          if (!stmt.starred) {
            run_blocks(stmt, *child, frame);
            return;
          }
          std::int64_t guard = 0;
          for (;;) {
            check_deadline(&stmt);
            // Sweep top: a valid redo point — the fixed-point loop carries
            // no state besides the machine itself, so restoring here and
            // re-dispatching from construct entry resumes this sweep.
            rscope.safe_point(child.get(), frame);
            machine.charge_global_or();
            if (!run_blocks_once_if_enabled(stmt, *child, frame)) return;
            if (opts.max_iterations > 0 && ++guard > opts.max_iterations) {
              runtime_error(
                  &stmt,
                  support::format("*par exceeded the iteration limit "
                                  "(%lld); raise or disable it with "
                                  "--max-iterations",
                                  static_cast<long long>(
                                      opts.max_iterations)));
            }
          }
        }
        case UcOp::kOneof: {
          if (!stmt.starred) {
            exec_oneof(stmt, *child, frame);
            return;
          }
          std::int64_t guard = 0;
          for (;;) {
            check_deadline(&stmt);
            rscope.safe_point(child.get(), frame);
            machine.charge_global_or();
            if (!exec_oneof_once(stmt, *child, frame)) return;
            if (opts.max_iterations > 0 && ++guard > opts.max_iterations) {
              runtime_error(
                  &stmt,
                  support::format("*oneof exceeded the iteration limit "
                                  "(%lld); raise or disable it with "
                                  "--max-iterations",
                                  static_cast<long long>(
                                      opts.max_iterations)));
            }
          }
        }
        case UcOp::kSolve: {
          if (stmt.starred) {
            exec_star_solve(stmt, *child, frame, rscope);
          } else {
            exec_solve(stmt, *child, frame);
          }
          return;
        }
      }
      return;
    } catch (const support::TransientFault&) {
      // Innermost scope with a snapshot wins; otherwise let the fault
      // unwind to an enclosing construct or the top-level net in run().
      if (!rscope.try_recover()) throw;
    }
  }
}

void Impl::exec_seq(const UcConstructStmt& stmt, LaneSpace& parent,
                    const std::vector<std::int64_t>& active, Frame* frame,
                    RecoveryScope& rscope) {
  // seq iterates the Cartesian product in declaration order, binding the
  // elements for the *same* lanes (no VP expansion, paper §3.5).
  std::vector<const std::vector<std::int64_t>*> values;
  std::int64_t prod = 1;
  for (const Symbol* s : stmt.index_set_syms) {
    values.push_back(&s->index_set->values);
    prod *= static_cast<std::int64_t>(s->index_set->values.size());
  }

  std::int64_t guard = 0;
  for (;;) {  // once for plain seq; repeated for *seq
    check_deadline(&stmt);
    // *seq sweep top: the tuple loop rebuilds its binding spaces from
    // scratch each sweep, so this is a valid redo point.
    if (stmt.starred) rscope.safe_point(&parent, frame);
    bool any_enabled_this_sweep = false;
    std::vector<std::size_t> pos(values.size(), 0);
    for (std::int64_t t = 0; t < prod; ++t) {
      // Binding space: same lanes as `active`, plus the seq elements.
      LaneSpace bind;
      bind.parent = &parent;
      bind.frontend = parent.frontend;
      bind.dims = parent.dims;
      bind.geom_size = parent.geom_size;
      for (const Symbol* s : stmt.index_set_syms) {
        bind.elems.push_back(s->index_set->elem);
      }
      const std::size_t k_sets = bind.elems.size();
      const std::size_t n_dims = bind.dims.size();
      bind.parent_lane = active;
      bind.vps.resize(active.size());
      bind.coords.resize(active.size() * n_dims);
      bind.elem_vals.resize(active.size() * k_sets);
      for (std::size_t k = 0; k < active.size(); ++k) {
        bind.vps[k] = parent.vps[static_cast<std::size_t>(active[k])];
        for (std::size_t d = 0; d < n_dims; ++d) {
          bind.coords[k * n_dims + d] =
              parent.coords[static_cast<std::size_t>(active[k]) * n_dims + d];
        }
        for (std::size_t s = 0; s < k_sets; ++s) {
          bind.elem_vals[k * k_sets + s] = (*values[s])[pos[s]];
        }
      }
      std::vector<std::int64_t> bind_active(active.size());
      for (std::size_t k = 0; k < active.size(); ++k) {
        bind_active[k] = static_cast<std::int64_t>(k);
      }

      for (const auto& block : stmt.blocks) {
        std::vector<std::int64_t> enabled = bind_active;
        if (block.pred) {
          enabled = filter_lanes(*block.pred, bind, bind_active, frame);
        }
        if (!enabled.empty()) {
          any_enabled_this_sweep = true;
          exec_parallel_stmt(*block.body, bind, enabled, frame);
        }
      }
      if (stmt.others) {
        // Lanes not enabled by any block (re-evaluate preds; cheap and
        // simple — seq others is rare).
        std::vector<bool> covered(active.size(), stmt.blocks.empty());
        for (const auto& block : stmt.blocks) {
          if (!block.pred) {
            covered.assign(active.size(), true);
            break;
          }
          auto en = filter_lanes(*block.pred, bind, bind_active, frame);
          for (auto l : en) covered[static_cast<std::size_t>(l)] = true;
        }
        std::vector<std::int64_t> rest;
        for (std::size_t k = 0; k < covered.size(); ++k) {
          if (!covered[k]) rest.push_back(static_cast<std::int64_t>(k));
        }
        if (!rest.empty()) exec_parallel_stmt(*stmt.others, bind, rest, frame);
      }

      for (std::size_t k = values.size(); k-- > 0;) {
        if (++pos[k] < values[k]->size()) break;
        pos[k] = 0;
      }
    }
    if (!stmt.starred) return;
    machine.charge_global_or();
    if (!any_enabled_this_sweep) return;
    if (stmt.blocks.size() == 1 && !stmt.blocks[0].pred) {
      runtime_error(&stmt, "*seq without a predicate never terminates");
    }
    if (opts.max_iterations > 0 && ++guard > opts.max_iterations) {
      runtime_error(&stmt,
                    support::format("*seq exceeded the iteration limit "
                                    "(%lld); raise or disable it with "
                                    "--max-iterations",
                                    static_cast<long long>(
                                        opts.max_iterations)));
    }
  }
}

void Impl::run_blocks(const UcConstructStmt& stmt, LaneSpace& space,
                      Frame* frame) {
  std::vector<std::int64_t> all(static_cast<std::size_t>(space.lane_count()));
  for (std::size_t k = 0; k < all.size(); ++k) {
    all[k] = static_cast<std::int64_t>(k);
  }
  std::vector<bool> covered(all.size(), false);
  for (const auto& block : stmt.blocks) {
    std::vector<std::int64_t> enabled = all;
    if (block.pred) enabled = filter_lanes(*block.pred, space, all, frame);
    for (auto l : enabled) covered[static_cast<std::size_t>(l)] = true;
    if (!enabled.empty()) {
      exec_parallel_stmt(*block.body, space, enabled, frame);
    }
  }
  if (stmt.others) {
    std::vector<std::int64_t> rest;
    for (std::size_t k = 0; k < covered.size(); ++k) {
      if (!covered[k]) rest.push_back(all[k]);
    }
    if (!rest.empty()) exec_parallel_stmt(*stmt.others, space, rest, frame);
  }
}

bool Impl::run_blocks_once_if_enabled(const UcConstructStmt& stmt,
                                      LaneSpace& space, Frame* frame) {
  std::vector<std::int64_t> all(static_cast<std::size_t>(space.lane_count()));
  for (std::size_t k = 0; k < all.size(); ++k) {
    all[k] = static_cast<std::int64_t>(k);
  }
  // Evaluate all predicates first: iteration continues only while at least
  // one lane is enabled for some block (paper §3.3).
  std::vector<std::vector<std::int64_t>> enabled(stmt.blocks.size());
  bool any = false;
  std::vector<bool> covered(all.size(), false);
  for (std::size_t b = 0; b < stmt.blocks.size(); ++b) {
    if (stmt.blocks[b].pred) {
      enabled[b] = filter_lanes(*stmt.blocks[b].pred, space, all, frame);
    } else {
      enabled[b] = all;
    }
    for (auto l : enabled[b]) covered[static_cast<std::size_t>(l)] = true;
    any = any || !enabled[b].empty();
  }
  if (!any) return false;
  for (std::size_t b = 0; b < stmt.blocks.size(); ++b) {
    if (!enabled[b].empty()) {
      exec_parallel_stmt(*stmt.blocks[b].body, space, enabled[b], frame);
    }
  }
  if (stmt.others) {
    std::vector<std::int64_t> rest;
    for (std::size_t k = 0; k < covered.size(); ++k) {
      if (!covered[k]) rest.push_back(all[k]);
    }
    if (!rest.empty()) exec_parallel_stmt(*stmt.others, space, rest, frame);
  }
  return true;
}

void Impl::exec_oneof(const UcConstructStmt& stmt, LaneSpace& space,
                      Frame* frame) {
  (void)exec_oneof_once(stmt, space, frame);
}

bool Impl::exec_oneof_once(const UcConstructStmt& stmt, LaneSpace& space,
                           Frame* frame) {
  std::vector<std::int64_t> all(static_cast<std::size_t>(space.lane_count()));
  for (std::size_t k = 0; k < all.size(); ++k) {
    all[k] = static_cast<std::int64_t>(k);
  }
  std::vector<std::vector<std::int64_t>> enabled(stmt.blocks.size());
  std::vector<std::size_t> enabled_blocks;
  for (std::size_t b = 0; b < stmt.blocks.size(); ++b) {
    if (stmt.blocks[b].pred) {
      enabled[b] = filter_lanes(*stmt.blocks[b].pred, space, all, frame);
    } else {
      enabled[b] = all;
    }
    if (!enabled[b].empty()) enabled_blocks.push_back(b);
  }
  if (enabled_blocks.empty()) return false;
  // Non-deterministic but reproducible choice (no fairness guarantee,
  // paper §3.7): the machine's seeded RNG picks the block.
  const std::size_t pick =
      enabled_blocks[machine.rng().next_below(enabled_blocks.size())];
  exec_parallel_stmt(*stmt.blocks[pick].body, space, enabled[pick], frame);
  if (stmt.others) {
    std::vector<bool> covered(all.size(), false);
    for (auto l : enabled[pick]) covered[static_cast<std::size_t>(l)] = true;
    std::vector<std::int64_t> rest;
    for (std::size_t k = 0; k < covered.size(); ++k) {
      if (!covered[k]) rest.push_back(all[k]);
    }
    if (!rest.empty()) exec_parallel_stmt(*stmt.others, space, rest, frame);
  }
  return true;
}

}  // namespace uc::vm::detail
