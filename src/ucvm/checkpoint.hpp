// VM checkpoint/rollback (docs/ROBUSTNESS.md).
//
// A Checkpoint is a full snapshot of everything a UC program can observe:
// machine field payloads + defined flags, the machine RNG, global and
// frame scalars, the per-lane locals of the live lane-space chain, the
// output stream position, the statement counter and the front-end RNG.
// Because lane RNGs are derived from (base seed, statement id, VP),
// restoring this state makes re-execution bit-exact — which is the whole
// correctness argument: replay from a snapshot retraces the original run.
//
// Cost stats and the fault injector are NOT restored: recovery costs real
// cycles, and rewinding the fault schedule would replay the same fault
// forever.
//
// Snapshots are captured at *safe points* — places where re-entering the
// enclosing construct from its start, with the captured state, re-executes
// exactly what originally followed the capture: construct entry, and the
// sweep/round tops of the starred fixed-point loops (whose iteration has
// no loop-carried control state).  `solve` captures at entry only: its
// round loop carries fired-equation flags a field snapshot cannot rewind.
//
// RecoveryScope is the RAII anchor: each construct driver owns one, and on
// a support::TransientFault the innermost scope holding a checkpoint
// restores it and re-runs its construct; scopes without one let the fault
// unwind to an outer scope (whose snapshot is older but equally valid —
// restore rewinds every commit made since).  ExecOptions::checkpoint_every
// throttles how often safe points actually capture.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cm/machine.hpp"
#include "ucvm/value.hpp"

namespace uc::lang {
struct Stmt;
}

namespace uc::vm::detail {

struct Impl;
struct Frame;
struct LaneSpace;

struct Checkpoint {
  cm::MachineImage machine;
  std::vector<std::pair<std::size_t, Value>> global_scalars;
  Frame* frame = nullptr;  // must still be alive at restore (anchor frame)
  std::vector<std::pair<std::size_t, Value>> frame_scalars;
  // Per-lane locals of every space on the chain at capture; restore
  // replaces each map wholesale (clearing locals declared after capture).
  struct SpaceLocals {
    LaneSpace* space = nullptr;
    std::unordered_map<std::int32_t, std::vector<Value>> locals;
  };
  std::vector<SpaceLocals> chain;
  std::size_t output_size = 0;
  std::uint64_t stmt_counter = 0;
  std::uint64_t fe_rng_state = 0;
};

// Per-run bookkeeping: capture cadence (statements since last capture vs
// ExecOptions::checkpoint_every), how many checkpoints are currently held
// by live scopes, and the global replay budget.
class CheckpointManager {
 public:
  explicit CheckpointManager(Impl& vm);

  bool enabled() const;
  // Called once per synchronous statement (the eval_lanes funnel).
  void note_statement() { ++stmt_seq_; }
  // Cadence: capture when at least `checkpoint_every` statements ran since
  // the last capture anywhere.
  bool due() const;
  bool any_checkpoint() const { return live_checkpoints_ > 0; }

  // `charge` is false only when re-anchoring state restored from a durable
  // snapshot: the original run already paid the capture cost, and it is
  // part of the restored stats.
  Checkpoint capture(LaneSpace* space, Frame* frame, bool charge = true);
  void restore(const Checkpoint& ckpt);

  // Consumes one unit of the replay budget; false = budget exhausted and
  // the fault must escalate.
  bool consume_replay();
  std::uint64_t replays() const { return replays_; }

  // Cadence state, exposed for the durable-checkpoint layer
  // (docs/ROBUSTNESS.md "Durable checkpoints & resume").
  std::uint64_t statements() const { return stmt_seq_; }
  std::uint64_t last_capture() const { return last_capture_seq_; }
  // Jumps the cadence counters and replay budget to a durable snapshot's
  // captured values, so post-resume pacing matches the uninterrupted run.
  void restore_durable_counters(std::uint64_t stmt_seq,
                                std::uint64_t last_capture,
                                std::uint64_t replays) {
    stmt_seq_ = stmt_seq;
    last_capture_seq_ = last_capture;
    replays_ = replays;
  }

 private:
  friend class RecoveryScope;
  Impl& vm_;
  std::uint64_t stmt_seq_ = 0;
  std::uint64_t last_capture_seq_ = 0;
  std::uint64_t live_checkpoints_ = 0;
  std::uint64_t replays_ = 0;
};

// RAII recovery anchor owned by one construct driver.  The scope's
// checkpoint (if captured) is anchored at the construct's redo point;
// try_recover() restores it so the caller can re-dispatch the construct.
class RecoveryScope {
 public:
  RecoveryScope(Impl& vm, const lang::Stmt* where);
  ~RecoveryScope();
  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

  // Declares a safe point of this scope's redo loop.  Captures (replacing
  // any previous checkpoint of this scope) when checkpointing is enabled
  // and the cadence is due, no scope holds a checkpoint yet, or
  // `mandatory` is set (solve, whose statements have no retry net).
  void safe_point(LaneSpace* space, Frame* frame, bool mandatory = false);

  // On a transient fault: restore this scope's checkpoint and charge a
  // rollback.  False = nothing to restore here (let the fault unwind) or
  // the replay budget is exhausted.
  bool try_recover();

  bool has_checkpoint() const { return ckpt_.has_value(); }

  // Construction ordinal within the run (0 = the top-level net in run()).
  // Scope construction is deterministic given the program and seeds, so a
  // durable snapshot can name its capturing scope by ordinal and a resumed
  // process re-executing the prefix will construct the very same scope
  // with the very same ordinal — the hand-off point for --resume.
  std::uint64_t ordinal() const { return ordinal_; }

 private:
  Impl& vm_;
  const lang::Stmt* where_;
  std::uint64_t ordinal_ = 0;
  std::optional<Checkpoint> ckpt_;
};

}  // namespace uc::vm::detail
