#include "ucvm/checkpoint.hpp"

#include "support/str.hpp"
#include "ucvm/durable.hpp"
#include "ucvm/interp_detail.hpp"

namespace uc::vm::detail {

CheckpointManager::CheckpointManager(Impl& vm) : vm_(vm) {}

bool CheckpointManager::enabled() const {
  return vm_.opts.checkpoint_every > 0;
}

bool CheckpointManager::due() const {
  return stmt_seq_ - last_capture_seq_ >= vm_.opts.checkpoint_every;
}

bool CheckpointManager::consume_replay() {
  // Replays during prefix re-execution (a durable resume that has not yet
  // reached its snapshot's scope) are free: that stretch of the program
  // already succeeded once, and the deterministic fault schedule replays
  // the same faults it survived then.  Charging them would make a resumed
  // run strictly weaker than the original (docs/ROBUSTNESS.md).
  if (vm_.durable != nullptr && vm_.durable->resume_pending()) return true;
  if (replays_ >= vm_.opts.max_replays) return false;
  ++replays_;
  return true;
}

Checkpoint CheckpointManager::capture(LaneSpace* space, Frame* frame,
                                      bool charge) {
  Checkpoint c;
  c.machine = vm_.machine.snapshot_state();
  std::int64_t words = c.machine.words();
  for (std::size_t i = 0; i < vm_.globals.size(); ++i) {
    if (vm_.globals[i].kind == FrameSlot::Kind::kScalar) {
      c.global_scalars.emplace_back(i, vm_.globals[i].scalar);
      ++words;
    }
  }
  c.frame = frame;
  if (frame != nullptr) {
    for (std::size_t i = 0; i < frame->slots.size(); ++i) {
      if (frame->slots[i].kind == FrameSlot::Kind::kScalar) {
        c.frame_scalars.emplace_back(i, frame->slots[i].scalar);
        ++words;
      }
    }
  }
  for (LaneSpace* s = space; s != nullptr; s = s->parent) {
    c.chain.push_back({s, s->locals});
    for (const auto& [slot, vals] : s->locals) {
      (void)slot;
      words += static_cast<std::int64_t>(vals.size());
    }
  }
  c.output_size = vm_.output.size();
  c.stmt_counter = vm_.stmt_counter;
  c.fe_rng_state = vm_.fe_rng.state();
  if (charge) vm_.machine.charge_checkpoint(words);
  last_capture_seq_ = stmt_seq_;
  return c;
}

void CheckpointManager::restore(const Checkpoint& c) {
  vm_.machine.restore_state(c.machine);
  for (const auto& [slot, value] : c.global_scalars) {
    vm_.globals[slot].scalar = value;
  }
  if (c.frame != nullptr) {
    for (const auto& [slot, value] : c.frame_scalars) {
      c.frame->slots[slot].scalar = value;
    }
  }
  // Whole-map replacement: drops lane locals declared after the capture
  // and rewinds every committed lane-local write.
  for (const auto& sl : c.chain) {
    sl.space->locals = sl.locals;
  }
  vm_.output.resize(c.output_size);
  vm_.stmt_counter = c.stmt_counter;
  vm_.fe_rng.seed(c.fe_rng_state);
  // Restore rewinds data to the captured mapping, but the plan epoch kept
  // counting through any post-capture remaps — statements re-executed now
  // would otherwise hit communication plans (and cached exchange
  // schedules) recorded under the later layout and replay the wrong
  // charge recipe against pre-remap state.  Bumping to a *fresh* epoch
  // (never rewinding to the captured value, which would collide with
  // entries recorded before the capture under that same epoch) retires
  // every cached plan recorded on the abandoned timeline.
  ++vm_.plan_epoch_;
  vm_.machine.note_layout_change();
}

RecoveryScope::RecoveryScope(Impl& vm, const lang::Stmt* where)
    : vm_(vm), where_(where), ordinal_(vm.scope_seq_++) {}

RecoveryScope::~RecoveryScope() {
  if (ckpt_.has_value()) --vm_.ckpt->live_checkpoints_;
}

void RecoveryScope::safe_point(LaneSpace* space, Frame* frame,
                               bool mandatory) {
  auto& mgr = *vm_.ckpt;
  if (!mgr.enabled()) return;
  // Cross-process resume hand-off (docs/ROBUSTNESS.md "Durable checkpoints
  // & resume"): the fresh process re-executed the run prefix and has now
  // constructed the very scope whose snapshot survived on disk.  Apply it
  // instead of capturing, and re-anchor the restored state as this scope's
  // in-memory checkpoint (charge-free: the original capture's cost is part
  // of the restored stats).  Every safe point of one scope passes the same
  // (space, frame) pair, so a snapshot captured at a later sweep top
  // installs correctly at construct entry — re-dispatching from entry with
  // sweep-N state resumes sweep N, the same argument in-memory recovery
  // rests on.
  if (vm_.durable != nullptr && vm_.durable->resume_pending() &&
      vm_.durable->resume_ordinal() == ordinal_ && !ckpt_.has_value()) {
    if (vm_.durable->apply_resume(space, frame)) {
      ckpt_ = mgr.capture(space, frame, /*charge=*/false);
      ++mgr.live_checkpoints_;
      return;
    }
    // Shape mismatch: the pending resume was dropped; fall through and run
    // forward from here as a normal from-scratch execution.
  }
  if (!mandatory && mgr.any_checkpoint() && !mgr.due()) return;
  const bool had = ckpt_.has_value();
  ckpt_ = mgr.capture(space, frame);
  if (!had) ++mgr.live_checkpoints_;
  // Persist every capture (no extra cadence, so --checkpoint-dir never
  // changes modeled cycles) — except while a resume is still pending:
  // prefix re-execution must not rotate out the generations it may yet
  // need to fall back to.
  if (vm_.durable != nullptr && !vm_.durable->resume_pending()) {
    vm_.durable->write(*ckpt_, ordinal_);
  }
}

bool RecoveryScope::try_recover() {
  if (!ckpt_.has_value()) return false;
  auto& mgr = *vm_.ckpt;
  if (!mgr.consume_replay()) return false;
  mgr.restore(*ckpt_);
  vm_.machine.note_rollback();
  return true;
}

}  // namespace uc::vm::detail
