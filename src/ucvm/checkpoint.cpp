#include "ucvm/checkpoint.hpp"

#include "support/str.hpp"
#include "ucvm/interp_detail.hpp"

namespace uc::vm::detail {

CheckpointManager::CheckpointManager(Impl& vm) : vm_(vm) {}

bool CheckpointManager::enabled() const {
  return vm_.opts.checkpoint_every > 0;
}

bool CheckpointManager::due() const {
  return stmt_seq_ - last_capture_seq_ >= vm_.opts.checkpoint_every;
}

bool CheckpointManager::consume_replay() {
  if (replays_ >= vm_.opts.max_replays) return false;
  ++replays_;
  return true;
}

Checkpoint CheckpointManager::capture(LaneSpace* space, Frame* frame) {
  Checkpoint c;
  c.machine = vm_.machine.snapshot_state();
  std::int64_t words = c.machine.words();
  for (std::size_t i = 0; i < vm_.globals.size(); ++i) {
    if (vm_.globals[i].kind == FrameSlot::Kind::kScalar) {
      c.global_scalars.emplace_back(i, vm_.globals[i].scalar);
      ++words;
    }
  }
  c.frame = frame;
  if (frame != nullptr) {
    for (std::size_t i = 0; i < frame->slots.size(); ++i) {
      if (frame->slots[i].kind == FrameSlot::Kind::kScalar) {
        c.frame_scalars.emplace_back(i, frame->slots[i].scalar);
        ++words;
      }
    }
  }
  for (LaneSpace* s = space; s != nullptr; s = s->parent) {
    c.chain.push_back({s, s->locals});
    for (const auto& [slot, vals] : s->locals) {
      (void)slot;
      words += static_cast<std::int64_t>(vals.size());
    }
  }
  c.output_size = vm_.output.size();
  c.stmt_counter = vm_.stmt_counter;
  c.fe_rng_state = vm_.fe_rng.state();
  vm_.machine.charge_checkpoint(words);
  last_capture_seq_ = stmt_seq_;
  return c;
}

void CheckpointManager::restore(const Checkpoint& c) {
  vm_.machine.restore_state(c.machine);
  for (const auto& [slot, value] : c.global_scalars) {
    vm_.globals[slot].scalar = value;
  }
  if (c.frame != nullptr) {
    for (const auto& [slot, value] : c.frame_scalars) {
      c.frame->slots[slot].scalar = value;
    }
  }
  // Whole-map replacement: drops lane locals declared after the capture
  // and rewinds every committed lane-local write.
  for (const auto& sl : c.chain) {
    sl.space->locals = sl.locals;
  }
  vm_.output.resize(c.output_size);
  vm_.stmt_counter = c.stmt_counter;
  vm_.fe_rng.seed(c.fe_rng_state);
  // Restore rewinds data to the captured mapping, but the plan epoch kept
  // counting through any post-capture remaps — statements re-executed now
  // would otherwise hit communication plans (and cached exchange
  // schedules) recorded under the later layout and replay the wrong
  // charge recipe against pre-remap state.  Bumping to a *fresh* epoch
  // (never rewinding to the captured value, which would collide with
  // entries recorded before the capture under that same epoch) retires
  // every cached plan recorded on the abandoned timeline.
  ++vm_.plan_epoch_;
  vm_.machine.note_layout_change();
}

RecoveryScope::RecoveryScope(Impl& vm, const lang::Stmt* where)
    : vm_(vm), where_(where) {}

RecoveryScope::~RecoveryScope() {
  if (ckpt_.has_value()) --vm_.ckpt->live_checkpoints_;
}

void RecoveryScope::safe_point(LaneSpace* space, Frame* frame,
                               bool mandatory) {
  auto& mgr = *vm_.ckpt;
  if (!mgr.enabled()) return;
  if (!mandatory && mgr.any_checkpoint() && !mgr.due()) return;
  const bool had = ckpt_.has_value();
  ckpt_ = mgr.capture(space, frame);
  if (!had) ++mgr.live_checkpoints_;
}

bool RecoveryScope::try_recover() {
  if (!ckpt_.has_value()) return false;
  auto& mgr = *vm_.ckpt;
  if (!mgr.consume_replay()) return false;
  mgr.restore(*ckpt_);
  vm_.machine.note_rollback();
  return true;
}

}  // namespace uc::vm::detail
