// Internal machinery of the UC VM (see interp.hpp for the model).  Not
// part of the public API; included by the interp_*.cpp files and by
// white-box tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cm/plan_cache.hpp"
#include "prof/profile.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "ucvm/checkpoint.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm::detail {

namespace kernel {
class Engine;
}

class DurableCheckpoints;  // durable.hpp

using lang::Expr;
using lang::FuncDecl;
using lang::Stmt;
using lang::Symbol;

// ---------------------------------------------------------------------------
// Lane spaces
// ---------------------------------------------------------------------------

// One expansion level of the parallel execution context.  A space owns a
// set of lanes: each lane has bound index-element values, a VP id in the
// space's geometry, and coordinates (index-set *positions*, outermost
// first) used to classify array accesses as local/NEWS/router.
struct LaneSpace {
  LaneSpace* parent = nullptr;
  bool frontend = false;  // the root space (one lane on the front end)

  std::vector<const Symbol*> elems;       // elements bound by THIS space
  std::vector<std::int64_t> elem_vals;    // lane-major [lane*elems.size()+k]
  std::vector<std::int64_t> parent_lane;  // per lane
  std::vector<cm::VpIndex> vps;           // per lane
  std::vector<std::int64_t> dims;         // full geometry (parents' + own)
  std::vector<std::int64_t> coords;       // lane-major [lane*dims.size()+d]
  std::int64_t geom_size = 1;

  // Per-lane locals declared in this space's statements: slot -> values.
  std::unordered_map<std::int32_t, std::vector<Value>> locals;

  std::int64_t lane_count() const {
    return static_cast<std::int64_t>(vps.size());
  }

  // Finds the bound value of an index element for a lane, walking up the
  // parent chain.  Returns nullopt if the element is not bound (sema
  // should have prevented this).
  std::optional<std::int64_t> elem_value(const Symbol* elem,
                                         std::int64_t lane) const;

  // Finds the space (and translated lane) holding per-lane storage for a
  // local slot; nullptr if no ancestor has it (it is a frame scalar).
  LaneSpace* find_local(std::int32_t slot, std::int64_t lane,
                        std::int64_t* out_lane);
};

// ---------------------------------------------------------------------------
// Frames, write buffers, access statistics
// ---------------------------------------------------------------------------

struct FrameSlot {
  enum class Kind : std::uint8_t { kEmpty, kScalar, kArray };
  Kind kind = Kind::kEmpty;
  Value scalar;
  ArrayPtr array;
};

struct Frame {
  const FuncDecl* fn = nullptr;
  std::vector<FrameSlot> slots;
};

// Address of a write target, usable as a hash key for conflict detection.
struct WriteTarget {
  enum class Kind : std::uint8_t { kArray, kGlobal, kFrame, kLaneLocal };
  Kind kind = Kind::kArray;
  void* obj = nullptr;     // ArrayObj* / nullptr / Frame* / LaneSpace*
  std::int64_t index = 0;  // flat element | slot | slot | slot
  std::int64_t lane = 0;   // kLaneLocal only

  friend bool operator==(const WriteTarget&, const WriteTarget&) = default;
};

struct WriteTargetHash {
  std::size_t operator()(const WriteTarget& t) const {
    auto h = std::hash<void*>()(t.obj);
    h ^= std::hash<std::int64_t>()(t.index * 1315423911ll) + (h << 6);
    h ^= std::hash<std::int64_t>()(t.lane) + (h >> 2);
    h ^= static_cast<std::size_t>(t.kind) * 0x9e3779b9u;
    return h;
  }
};

struct Write {
  WriteTarget target;
  Value value;
  const Expr* where = nullptr;  // for error messages
};

// Open-addressing conflict table for one commit's writes.  Every parallel
// statement funnels its buffered writes through here (paper §3.4: each
// variable may receive at most one value), so the per-write probe is on
// the hot commit path; a flat generation-stamped table avoids both the
// node allocations of std::unordered_map and a per-statement clear of the
// backing store.
class CommitSeen {
 public:
  struct Slot {
    WriteTarget target;
    Value value;
    const Expr* where = nullptr;
    std::uint32_t gen = 0;
  };

  // Sizes the table for one commit's writes (load factor <= 1/2) and
  // invalidates every surviving entry by bumping the generation stamp.
  void begin(std::size_t expected_writes) {
    std::size_t want = 16;
    while (want < expected_writes * 2) want <<= 1;
    if (want > slots_.size()) {
      slots_.assign(want, Slot{});
      mask_ = want - 1;
      gen_ = 1;
      return;
    }
    if (++gen_ == 0) {  // stamp wrapped: hard-reset so 0 stays "empty"
      std::fill(slots_.begin(), slots_.end(), Slot{});
      gen_ = 1;
    }
  }

  // Returns the already-present entry for this target (first writer wins,
  // as in the sequential walk), or records the write and returns nullptr.
  Slot* check_insert(const Write& w) {
    std::size_t pos = WriteTargetHash{}(w.target) & mask_;
    for (;;) {
      Slot& s = slots_[pos];
      if (s.gen != gen_) {
        s.target = w.target;
        s.value = w.value;
        s.where = w.where;
        s.gen = gen_;
        return nullptr;
      }
      if (s.target == w.target) return &s;
      pos = (pos + 1) & mask_;
    }
  }

 private:
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t gen_ = 0;
};

// Communication classification counters for one statement execution.
// Summed across lanes; all fields merge commutatively so any host
// execution order yields identical charges.
struct AccessStats {
  std::uint64_t local = 0;
  std::uint64_t news = 0;
  std::uint64_t news_max_hops = 0;
  std::uint64_t router = 0;
  std::uint64_t frontend = 0;
  std::uint64_t broadcast = 0;

  void merge(const AccessStats& o) {
    local += o.local;
    news += o.news;
    news_max_hops = std::max(news_max_hops, o.news_max_hops);
    router += o.router;
    frontend += o.frontend;
    broadcast += o.broadcast;
  }
};

// ---------------------------------------------------------------------------
// Per-lane evaluation context
// ---------------------------------------------------------------------------

struct Impl;

struct EvalCtx {
  Impl* vm = nullptr;
  LaneSpace* space = nullptr;  // never null; root space for the front end
  std::int64_t lane = 0;
  Frame* frame = nullptr;  // innermost function frame
  // The frame the enclosing statement executes in.  Writes to frames
  // *below* it (functions called during this lane's evaluation) are
  // private and apply immediately; writes to statement_frame itself obey
  // the synchronous collect-then-commit rule.
  Frame* statement_frame = nullptr;

  // Synchronous-write collection; nullptr = commit directly.
  std::vector<Write>* writes = nullptr;
  AccessStats* stats = nullptr;
  std::string* print_out = nullptr;  // per-lane print buffer (may be null)

  // Deterministic per-lane RNG (seeded lazily from statement id + VP).
  support::SplitMix64 rng{0};
  bool rng_seeded = false;

  // >0 while evaluating inside a partition-optimised reduction: accesses
  // there are paid for by the send-with-combine charge, not counted again.
  int suppress_comm = 0;

  // solve support: reads of undefined target-array elements poison the
  // evaluation instead of failing.
  bool solve_mode = false;
  bool undef = false;
  const std::unordered_set<ArrayObj*>* solve_targets = nullptr;

  bool is_frontend() const { return space->frontend; }
};

// Execution flow for scalar statement execution (function bodies, main).
enum class Flow : std::uint8_t { kNormal, kReturn, kBreak, kContinue };

// ---------------------------------------------------------------------------
// The VM implementation object
// ---------------------------------------------------------------------------

struct Impl {
  const lang::CompilationUnit& unit;
  cm::Machine& machine;
  ExecOptions opts;

  std::vector<FrameSlot> globals;
  std::string output;
  std::uint64_t stmt_counter = 0;  // statement-instance id for lane RNG
  std::uint64_t base_seed = 1;
  support::SplitMix64 fe_rng{1};
  Value return_value;  // last function return (scalar exec)
  LaneSpace root;      // the front-end space (one lane)

  Impl(const lang::CompilationUnit& u, cm::Machine& m, ExecOptions o);
  ~Impl();  // out of line: kernel::Engine is incomplete here

  RunResult run();

  // --- scalar (front end / function body) execution ---
  Flow exec_scalar_stmt(const Stmt& stmt, EvalCtx& ctx);
  Value call_function(const FuncDecl& fn, std::vector<Value> scalar_args,
                      std::vector<ArrayPtr> array_args,
                      const std::vector<bool>& is_array_arg, EvalCtx& caller);

  // --- parallel execution ---
  void exec_construct(const lang::UcConstructStmt& stmt, EvalCtx& ctx);
  void exec_nested_construct(const lang::UcConstructStmt& stmt,
                             LaneSpace& parent,
                             const std::vector<std::int64_t>& active,
                             Frame* frame);
  void exec_seq(const lang::UcConstructStmt& stmt, LaneSpace& parent,
                const std::vector<std::int64_t>& active, Frame* frame,
                RecoveryScope& rscope);
  bool run_blocks_once_if_enabled(const lang::UcConstructStmt& stmt,
                                  LaneSpace& space, Frame* frame);
  bool exec_oneof_once(const lang::UcConstructStmt& stmt, LaneSpace& space,
                       Frame* frame);
  void exec_parallel_stmt(const Stmt& stmt, LaneSpace& space,
                          const std::vector<std::int64_t>& active,
                          Frame* frame);

  // --- statement fusion (docs/VM.md "Fusion") ---
  // Partition of a compound par body into maximal runs of consecutive
  // fusable expression statements.  Depends only on the AST, so it is
  // computed once per CompoundStmt.
  struct FusionSeg {
    std::size_t begin = 0;
    std::size_t count = 1;
    bool fusable = false;  // >= 2 members, all provably independent
  };
  const std::vector<FusionSeg>& fusion_segments(const lang::CompoundStmt& s);
  // Runs members [begin, begin+count) as one fused kernel: one pool
  // dispatch, per-member charging under each member's own profiler scope,
  // and a single merged commit.  Returns false (with no state mutated)
  // when the group cannot be compiled or linked — the caller then runs the
  // members unfused.
  bool exec_fused_group(const lang::CompoundStmt& s, std::size_t begin,
                        std::size_t count, LaneSpace& space,
                        const std::vector<std::int64_t>& active,
                        Frame* frame);
  std::unique_ptr<LaneSpace> expand(LaneSpace& parent,
                                    const std::vector<std::int64_t>& active,
                                    const std::vector<Symbol*>& sets);
  // Evaluates `pred` over `candidates`, returning the enabled subset.
  std::vector<std::int64_t> filter_lanes(
      const Expr& pred, LaneSpace& space,
      const std::vector<std::int64_t>& candidates, Frame* frame);
  void run_blocks(const lang::UcConstructStmt& stmt, LaneSpace& space,
                  Frame* frame);
  void exec_oneof(const lang::UcConstructStmt& stmt, LaneSpace& space,
                  Frame* frame);
  void exec_solve(const lang::UcConstructStmt& stmt, LaneSpace& space,
                  Frame* frame);
  void exec_star_solve(const lang::UcConstructStmt& stmt, LaneSpace& space,
                       Frame* frame, RecoveryScope& rscope);

  // Evaluates an expression for every lane in `active` (on the thread
  // pool), collecting writes and prints per lane, then commits writes with
  // single-value conflict checking and flushes prints in lane order.
  // Returns the per-lane values.
  std::vector<Value> eval_lanes(const Expr& expr, LaneSpace& space,
                                const std::vector<std::int64_t>& active,
                                Frame* frame, bool commit = true);

  void commit_writes(std::vector<std::vector<Write>>& per_lane);
  // Incremental commit used by both engines: commit_begin resets the
  // reusable conflict map, commit_check records one write (raising the
  // conflicting-parallel-assignment error on a second, different value for
  // the same target), and the caller then applies the writes.
  void commit_begin(std::size_t expected_writes);
  void commit_check(const Write& w);
  void apply_write(const WriteTarget& t, const Value& v);
  // Charges the dynamic comm stats gathered by one statement execution
  // (order matters for the paris trace: news, router, broadcast, frontend).
  void charge_dynamic_stats(const AccessStats& total, std::int64_t geom_size);

  // Lazily constructed bytecode engine (exec.cpp).
  kernel::Engine& kernel_engine();
  std::unique_ptr<kernel::Engine> kernel_engine_;
  // Communication-plan cache (src/cm/plan_cache.hpp) and its invalidation
  // epoch: bumped whenever an array is (re)declared or remapped, since
  // cached plans bake in mapping- and shape-dependent decisions.
  cm::PlanCache plan_cache_;
  std::uint64_t plan_epoch_ = 0;
  std::unordered_map<const Stmt*, std::vector<FusionSeg>> fusion_segments_;
  CommitSeen commit_seen_;

  // --- expression evaluation (per lane) ---
  Value eval(const Expr& e, EvalCtx& ctx);
  Value eval_reduce(const lang::ReduceExpr& e, EvalCtx& ctx);
  Value eval_call(const lang::CallExpr& e, EvalCtx& ctx);
  std::optional<WriteTarget> resolve_lvalue(const Expr& e, EvalCtx& ctx);
  Value read_target(const WriteTarget& t, const EvalCtx& ctx);
  void write_value(const WriteTarget& t, Value v, const Expr& where,
                   EvalCtx& ctx);
  ArrayPtr array_of(const Symbol& sym, const EvalCtx& ctx);
  void classify_access(const ArrayObj& arr, std::int64_t flat, EvalCtx& ctx);

  // --- charging ---
  // Charges the static cost of one synchronous statement expression over a
  // VP set of geom_size lanes (or the front end when frontend=true),
  // including nested reductions.  `outer_space` (may be null) lets the
  // processor optimisation recognise partitionable reductions.  When
  // `record` is non-null every machine charge (and every partition
  // decision) is appended to it so the communication-plan cache can replay
  // the recipe later; `planned` charges vector/reduce issues at the
  // reduced plan_issue_overhead (fused rider members share their group's
  // front-end issue).
  void charge_expr(const Expr& e, std::int64_t geom_size, bool frontend,
                   const LaneSpace* outer_space = nullptr,
                   cm::Plan* record = nullptr, bool planned = false);
  // Plan-cached statement charging (fuse=on): on a signature hit the
  // recorded recipe replays at reduced issue cost; on a miss the statement
  // charges normally while recording, then the plan is cached.
  void charge_expr_planned(const Expr& e, LaneSpace& space,
                           bool rider = false);
  std::uint64_t plan_key(const Expr& e, const LaneSpace& space) const;
  static std::uint64_t expr_weight(const Expr& e);
  // Like expr_weight, but repeated pure subexpressions count once — the
  // paper §4 common-subexpression optimisation as a cost-model effect.
  static std::uint64_t expr_weight_cse(const Expr& e);

  // --- mappings ---
  void apply_map_section(const lang::MapSectionStmt& section, EvalCtx& ctx);

  // --- helpers ---
  [[noreturn]] void runtime_error(const Expr* where, const std::string& msg);
  [[noreturn]] void runtime_error(const Stmt* where, const std::string& msg);
  std::string locate(support::SourceRange range) const;
  support::SplitMix64& lane_rng(EvalCtx& ctx);

  // --- robustness (docs/ROBUSTNESS.md) ---
  // Checkpoint/rollback bookkeeping; always constructed, no-ops unless
  // ExecOptions::checkpoint_every > 0.
  std::unique_ptr<CheckpointManager> ckpt;
  // Wall-clock watchdog deadline (ExecOptions::timeout_seconds); checked
  // at statement and loop boundaries via check_deadline().
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  void check_deadline(const Stmt* where);
  // Converts an unrecovered transient fault into a fatal
  // support::EscalatedFault with source context and a pointer at the
  // recovery knobs — distinguishable from other runtime errors so a
  // driver with durable snapshots can restore-and-retry.
  [[noreturn]] void fatal_fault(const support::TransientFault& tf,
                                const Stmt* where);

  // --- durable checkpoints (docs/ROBUSTNESS.md "Durable ... & resume") ---
  // RecoveryScope construction ordinals.  Deterministic given the program
  // and seeds (fault-triggered replays included: the schedule itself is
  // seeded), so a snapshot can name its capturing scope by ordinal and a
  // resumed process re-executing the prefix will meet it again.
  std::uint64_t scope_seq_ = 0;
  // Null unless ExecOptions::checkpoint_dir is set.
  std::unique_ptr<DurableCheckpoints> durable;
  // Crash-testing hook: SIGKILLs the process once the statement counter
  // reaches ExecOptions::die_at_statement (checked at the two statement
  // funnels, before the statement executes).
  void maybe_die();
  // Stable AST node ids: deterministic pre-order numbering of every
  // expression and resolved symbol of the program, identical across
  // processes for the same source — the currency durable snapshots use for
  // plan-cache keys and annotation sites in place of raw pointers.
  std::unordered_map<const void*, std::uint64_t> node_ids_;
  std::vector<const void*> node_by_id_;
  void build_node_ids();
  // Unregistered nodes fall back to the pointer value (high bit set, so it
  // cannot collide with a real id): still correct in-process, only the
  // cross-process stability of that one key is lost.
  std::uint64_t node_id(const void* node) const {
    auto it = node_ids_.find(node);
    if (it != node_ids_.end()) return it->second;
    return reinterpret_cast<std::uintptr_t>(node) | (1ull << 63);
  }
  const void* node_by_id(std::uint64_t id) const {
    return id < node_by_id_.size() ? node_by_id_[id] : nullptr;
  }

  // --- profiling (docs/PROFILING.md) ---
  // Null unless the caller passed ExecOptions::profiler; every hook is a
  // no-op then, keeping the unprofiled paths bit-identical and free.
  prof::Profiler* prof = nullptr;
  // AST node -> interned profiler site (one site per source site, however
  // many times it executes).
  std::unordered_map<const void*, prof::SiteId> prof_sites_;
  prof::SiteId prof_site(const void* key, const char* kind,
                         support::SourceRange range);
};

// RAII attribution scope: enters the (lazily interned) site for an AST
// node on construction, exits on destruction — exception-safe, and a
// complete no-op when profiling is off.
class ProfScope {
 public:
  ProfScope(Impl& vm, const void* key, const char* kind,
            support::SourceRange range);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Impl* vm_ = nullptr;  // null when profiling is off
};

// Shared between the tree walk and the bytecode engine (definitions in
// interp_expr.cpp) so arithmetic, reduction folding and remote-access
// classification cannot drift apart.
Value eval_binary_op(Impl& vm, lang::BinaryOp op, const Value& a,
                     const Value& b, const Expr& where);
Value fold_reduce_value(lang::ReduceKind op, const Value& acc, const Value& v);
Value reduce_identity_value(lang::ReduceKind op, bool flt);
// Classifies an access to a non-replicated array from a lane that is not on
// the front end: local when the lane's VP owns the element, NEWS for a
// short single-axis offset when the lane geometry matches the array shape
// (geom_matches), router otherwise.
void classify_remote_access(const ArrayObj& arr, std::int64_t flat,
                            cm::VpIndex vp, const std::int64_t* lane_coords,
                            std::size_t n_dims, bool geom_matches,
                            const cm::CostModel& cost, AccessStats& stats);

// True when the reduction's arms are guarded by predicates of the shape
// `f(inner elems) == g(outer elems)` so each input element contributes to
// at most one outer lane — the paper §4 processor optimisation.
bool reduction_partitions(const lang::ReduceExpr& e,
                          const LaneSpace& outer_space);

// Partitions an active-lane list into per-shard contiguous subranges
// (docs/SHARDING.md): entry s is the half-open [begin, end) range of
// positions in `active` whose lane VP falls in shard s's block.  Valid
// because space.vps is monotone ascending in lane order (expand() builds
// vp = parent_vp * prod + tuple_flat) and active-lane lists are ascending,
// so ownership is monotone along `active` and each boundary is one binary
// search.  Both engines' dispatch paths use this to give every shard's
// lanes to exactly one worker per statement.
std::vector<std::pair<std::int64_t, std::int64_t>> shard_lane_ranges(
    const LaneSpace& space, const std::vector<std::int64_t>& active,
    const cm::ShardLayout& layout);

}  // namespace uc::vm::detail
