// Bytecode executor for the lane-kernel engine: link, per-lane switch
// dispatch, stat merging and the lane-ordered write commit.  Every
// observable effect (values, buffered-write order, comm classification,
// error messages, RNG draws) matches the tree walk in interp_expr.cpp —
// the engine_parity test suite holds the two engines to byte identity.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ucvm/kernel/kernel.hpp"

#include "uclang/symbols.hpp"
#include "ucvm/durable.hpp"  // complete type for ~Impl's unique_ptr member

namespace uc::vm::detail::kernel {

using lang::BinaryOp;
using lang::ReduceKind;
using lang::ScalarKind;
using lang::SymbolKind;
using lang::UnaryOp;

Engine::Engine(Impl& vm) : vm_(vm) {
  arenas_.resize(vm_.machine.pool().thread_count());
}

const Kernel* Engine::compile_cached(const Expr& expr) {
  auto it = cache_.find(&expr);
  if (it == cache_.end()) {
    it = cache_.emplace(&expr, compile_expr(expr)).first;
  }
  return it->second.get();
}

const Kernel* Engine::compile_optimized_cached(const Expr& expr) {
  auto it = opt_cache_.find(&expr);
  if (it == opt_cache_.end()) {
    const Expr* one[1] = {&expr};
    it = opt_cache_.emplace(&expr, compile_fused(one, 1)).first;
  }
  return it->second.get();
}

namespace {

// Equality of the lane geometry against an array's shape, where the lane
// geometry is (outer dims ++ reduce set sizes) for in-reduce sites.
bool geom_equals(const std::vector<std::int64_t>& base, std::size_t base_dims,
                 const std::int64_t* extra, std::size_t n_extra,
                 const std::vector<std::int64_t>& arr_dims) {
  if (arr_dims.size() != base_dims + n_extra) return false;
  for (std::size_t d = 0; d < base_dims; ++d) {
    if (arr_dims[d] != base[d]) return false;
  }
  for (std::size_t k = 0; k < n_extra; ++k) {
    if (arr_dims[base_dims + k] != extra[k]) return false;
  }
  return true;
}

}  // namespace

bool Engine::link(const Kernel& k, LaneSpace& space, Frame* frame) {
  // Ancestor chain (depth_spaces_[0] is the statement space).
  depth_spaces_.clear();
  depth_spaces_.push_back(&space);
  max_depth_ = 0;

  auto space_at = [&](std::int32_t depth) -> LaneSpace* {
    while (static_cast<std::int32_t>(depth_spaces_.size()) <= depth) {
      LaneSpace* parent = depth_spaces_.back()->parent;
      if (parent == nullptr) return nullptr;
      depth_spaces_.push_back(parent);
    }
    return depth_spaces_[static_cast<std::size_t>(depth)];
  };

  elems_.resize(k.elems.size());
  for (std::size_t i = 0; i < k.elems.size(); ++i) {
    const Symbol* sym = k.elems[i].sym;
    bool found = false;
    for (std::int32_t depth = 0; depth < kMaxDepth; ++depth) {
      LaneSpace* s = space_at(depth);
      if (s == nullptr) break;
      // Innermost binding wins, matching LaneSpace::elem_value.
      for (std::size_t kk = s->elems.size(); kk-- > 0;) {
        if (s->elems[kk] == sym) {
          elems_[i].vals = s->elem_vals.data();
          elems_[i].depth = depth;
          elems_[i].k = static_cast<std::uint16_t>(kk);
          elems_[i].width = static_cast<std::uint16_t>(s->elems.size());
          max_depth_ = std::max(max_depth_, depth);
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) return false;  // walk raises "not bound here"
  }

  scalars_.resize(k.scalars.size());
  for (std::size_t i = 0; i < k.scalars.size(); ++i) {
    const Symbol* sym = k.scalars[i].sym;
    LinkedScalar& ls = scalars_[i];
    if (sym->kind == SymbolKind::kGlobalVar) {
      ls.home = ScalarHome::kGlobal;
      ls.slot = sym->slot;
      ls.value = &vm_.globals[static_cast<std::size_t>(sym->slot)].scalar;
      continue;
    }
    // Per-lane storage if any ancestor space declared the slot, matching
    // LaneSpace::find_local; otherwise it is a frame scalar.
    bool lane_local = false;
    for (std::int32_t depth = 0; depth < kMaxDepth; ++depth) {
      LaneSpace* s = space_at(depth);
      if (s == nullptr) break;
      auto it = s->locals.find(sym->slot);
      if (it != s->locals.end()) {
        ls.home = ScalarHome::kLaneLocal;
        ls.slot = sym->slot;
        ls.depth = depth;
        ls.owner = s;
        ls.store = &it->second;
        max_depth_ = std::max(max_depth_, depth);
        lane_local = true;
        break;
      }
    }
    if (lane_local) continue;
    if (frame == nullptr ||
        static_cast<std::size_t>(sym->slot) >= frame->slots.size()) {
      return false;
    }
    ls.home = ScalarHome::kFrame;
    ls.slot = sym->slot;
    ls.depth = 0;
    ls.owner = nullptr;
    ls.store = nullptr;
    ls.value = &frame->slots[static_cast<std::size_t>(sym->slot)].scalar;
  }

  reduces_.resize(k.reduces.size());
  for (std::size_t i = 0; i < k.reduces.size(); ++i) {
    const auto* expr = k.reduces[i].expr;
    LinkedReduce& lr = reduces_[i];
    lr.expr = expr;
    lr.n_sets = expr->index_set_syms.size();
    lr.prod = 1;
    for (std::size_t s = 0; s < lr.n_sets; ++s) {
      const auto* info = expr->index_set_syms[s]->index_set;
      lr.values[s] = &info->values;
      lr.sizes[s] = static_cast<std::int64_t>(info->values.size());
      lr.prod *= lr.sizes[s];
    }
    lr.flt = expr->type.is_float();
    lr.op = expr->op;
    lr.base_dims = space.frontend ? 0 : space.dims.size();
    lr.n_dims = lr.base_dims + lr.n_sets;
    if (lr.n_dims > 8) return false;  // coords buffer; fall back to the walk
  }

  arrays_.resize(k.arrays.size());
  for (std::size_t i = 0; i < k.arrays.size(); ++i) {
    const Symbol* sym = k.arrays[i].sym;
    LinkedArray& la = arrays_[i];
    la.reduce = k.arrays[i].reduce;
    const FrameSlot* slot = nullptr;
    if (sym->kind == SymbolKind::kGlobalVar) {
      slot = &vm_.globals[static_cast<std::size_t>(sym->slot)];
    } else if (frame != nullptr &&
               static_cast<std::size_t>(sym->slot) < frame->slots.size()) {
      slot = &frame->slots[static_cast<std::size_t>(sym->slot)];
    }
    if (slot == nullptr || slot->kind != FrameSlot::Kind::kArray ||
        slot->array == nullptr) {
      return false;  // walk raises "used before its declaration executed"
    }
    la.keepalive = slot->array;
    la.arr = la.keepalive.get();
    la.data = la.arr->raw_data();
    la.owners = la.arr->owner_data();
    la.adims = la.arr->dims().data();
    la.astrides = la.arr->strides().data();
    la.rank = static_cast<std::uint32_t>(la.arr->dims().size());
    la.flt = la.arr->is_float();
    la.slice = la.arr->is_slice();
    // The access mode is a per-statement invariant: mappings only change
    // between statements (map sections are front-end-only).
    if (space.frontend) {
      la.mode = AccMode::kFrontend;
      continue;
    }
    if (la.arr->replicated()) {
      la.mode = AccMode::kLocalReplicated;
      continue;
    }
    la.mode = AccMode::kRemote;
    if (la.reduce >= 0) {
      const LinkedReduce& lr = reduces_[static_cast<std::size_t>(la.reduce)];
      la.geom_matches =
          geom_equals(space.dims, lr.base_dims, lr.sizes, lr.n_sets,
                      la.arr->dims());
    } else {
      la.geom_matches =
          space.dims.size() <= 8 && space.dims == la.arr->dims();
    }
    if (la.geom_matches) la.vp_coords = la.arr->coord_table();
  }

  return max_depth_ < kMaxDepth;
}

void Engine::classify_site(const LinkedArray& la, std::int64_t flat,
                           std::int64_t lane_vp,
                           const std::int64_t* lane_coords,
                           const ReduceState& rs, AccessStats& stats) const {
  // Inside a partition-optimised reduction accesses are already paid for
  // by the send-with-combine charge (walk: suppress_comm).
  if (la.reduce >= 0 && rs.suppress) return;
  switch (la.mode) {
    case AccMode::kFrontend:
      ++stats.frontend;
      return;
    case AccMode::kLocalReplicated:
      ++stats.local;
      return;
    case AccMode::kRemote: {
      std::int64_t vp;
      const std::int64_t* coords;
      if (la.reduce >= 0) {
        vp = rs.vp;
        coords = rs.coords;
      } else {
        vp = lane_vp;
        coords = lane_coords;
      }
      // Inlined classify_remote_access over the linked caches (identical
      // decision order: local, slice->router, NEWS when the geometry
      // matches, router otherwise).
      const cm::VpIndex owner = la.owners[flat];
      if (owner == vp) {
        ++stats.local;
        return;
      }
      if (la.slice) {
        ++stats.router;
        return;
      }
      if (la.geom_matches) {
        // geom_matches implies the lane geometry equals the array shape,
        // so la.rank coordinates cover both; the precomputed coord table
        // replaces the per-access unflatten division.
        const std::int64_t* oc =
            la.vp_coords + static_cast<std::size_t>(owner) * la.rank;
        int diff_axes = 0;
        std::int64_t hops = 0;
        for (std::uint32_t d = 0; d < la.rank; ++d) {
          if (oc[d] != coords[d]) {
            ++diff_axes;
            hops = oc[d] < coords[d] ? coords[d] - oc[d] : oc[d] - coords[d];
          }
        }
        if (diff_axes == 1) {
          const cm::CostModel& cost = vm_.machine.cost_model();
          if (static_cast<std::uint64_t>(hops) * cost.news_op <=
              cost.router_op) {
            ++stats.news;
            stats.news_max_hops = std::max(
                stats.news_max_hops, static_cast<std::uint64_t>(hops));
            return;
          }
        }
      }
      ++stats.router;
      return;
    }
  }
}

void Engine::run_lane(const Kernel& k, LaneSpace& space, std::int64_t lane,
                      std::int64_t result_slot, Frame* frame,
                      std::uint64_t stmt_id, Arena& arena,
                      std::vector<Value>& results) {
  Value* regs = arena.regs.data();
  const LinkedElem* elems = elems_.data();
  const LinkedScalar* scalars = scalars_.data();
  const LinkedArray* arrays = arrays_.data();
  const LinkedReduce* reduces = reduces_.data();

  // Translate this lane into every ancestor space the kernel touches.
  std::int64_t lanes[kMaxDepth];
  lanes[0] = lane;
  for (std::int32_t d = 1; d <= max_depth_; ++d) {
    lanes[d] = depth_spaces_[static_cast<std::size_t>(d) - 1]
                   ->parent_lane[static_cast<std::size_t>(lanes[d - 1])];
  }

  // Per-lane VP and coordinates, computed once (classification and
  // reductions reuse them instead of re-indexing the space per access).
  const std::int64_t lane_vp =
      space.frontend ? 0 : space.vps[static_cast<std::size_t>(lane)];
  const std::size_t n_dims = space.dims.size();
  const std::int64_t* lane_coords =
      n_dims > 0 ? &space.coords[static_cast<std::size_t>(lane) * n_dims]
                 : nullptr;

  // Same per-lane RNG stream as the walk's eval_lanes seeding.
  const bool use_fe_rng = space.frontend;
  support::SplitMix64 rng{0};
  if (k.uses_rand && !use_fe_rng) {
    rng.seed(vm_.base_seed ^ (stmt_id * 0x9e3779b97f4a7c15ull) ^
             (static_cast<std::uint64_t>(lane_vp) + 0x5851f42d4c957f2dull));
  }

  // Fused kernels switch this at kMemberBoundary so each member's
  // communication is attributed (and charged) separately.
  AccessStats* stats_cur = arena.stats.data();
  ReduceState& rs = arena.rs;
  const Inst* code = k.code.data();
  std::size_t ip = 0;
  for (;;) {
    const Inst& I = code[ip];
    switch (I.op) {
      case Op::kConst:
        regs[I.dst] = k.pool[I.a];
        break;
      case Op::kMove:
        regs[I.dst] = regs[I.a];
        break;
      case Op::kBool:
        regs[I.dst] = Value::of_bool(regs[I.a].truthy());
        break;
      case Op::kLoadElem: {
        const LinkedElem& le = elems[I.a];
        regs[I.dst] = Value::of_int(
            le.vals[static_cast<std::size_t>(lanes[le.depth]) * le.width +
                    le.k]);
        break;
      }
      case Op::kLoadReduceElem:
        regs[I.dst] = Value::of_int(rs.elem_vals[I.b]);
        break;
      case Op::kLoadScalar: {
        const LinkedScalar& ls = scalars[I.a];
        regs[I.dst] =
            ls.home == ScalarHome::kLaneLocal
                ? (*ls.store)[static_cast<std::size_t>(lanes[ls.depth])]
                : *ls.value;
        break;
      }
      case Op::kStoreScalar: {
        const LinkedScalar& ls = scalars[I.a];
        WriteTarget t;
        switch (ls.home) {
          case ScalarHome::kGlobal:
            t.kind = WriteTarget::Kind::kGlobal;
            t.index = ls.slot;
            break;
          case ScalarHome::kFrame:
            t.kind = WriteTarget::Kind::kFrame;
            t.obj = frame;
            t.index = ls.slot;
            break;
          case ScalarHome::kLaneLocal:
            t.kind = WriteTarget::Kind::kLaneLocal;
            t.obj = ls.owner;
            t.index = ls.slot;
            t.lane = lanes[ls.depth];
            break;
        }
        arena.writes.push_back(Write{t, regs[I.b], I.where});
        break;
      }
      case Op::kArrIndex: {
        const LinkedArray& la = arrays[I.a];
        // Inlined ArrayObj::flatten over the linked dim/stride caches.
        std::int64_t flat = I.c == la.rank ? 0 : -1;
        for (std::uint16_t j = 0; flat >= 0 && j < I.c; ++j) {
          const std::int64_t ix = regs[I.b + j].as_int();
          if (ix < 0 || ix >= la.adims[j]) {
            flat = -1;
            break;
          }
          flat += ix * la.astrides[j];
        }
        if (flat < 0) {
          std::string what = la.arr->name();
          for (std::uint16_t j = 0; j < I.c; ++j) {
            what += "[" + std::to_string(regs[I.b + j].as_int()) + "]";
          }
          vm_.runtime_error(I.where,
                            "array subscript out of range: " + what);
        }
        regs[I.dst] = Value::of_int(flat);
        break;
      }
      case Op::kArrLoad: {
        const LinkedArray& la = arrays[I.a];
        regs[I.dst] = Value::from_bits(la.data[regs[I.b].i], la.flt);
        break;
      }
      case Op::kArrGet: {
        // Fused kArrIndex + kClassify + kArrLoad for rvalue reads: one
        // dispatch, and the flat index stays in a local instead of a
        // register round-trip.  Order (bounds check, classify, load) and
        // the error site match the unfused sequence exactly.
        const LinkedArray& la = arrays[I.a];
        std::int64_t flat = I.c == la.rank ? 0 : -1;
        for (std::uint16_t j = 0; flat >= 0 && j < I.c; ++j) {
          const std::int64_t ix = regs[I.b + j].as_int();
          if (ix < 0 || ix >= la.adims[j]) {
            flat = -1;
            break;
          }
          flat += ix * la.astrides[j];
        }
        if (flat < 0) {
          std::string what = la.arr->name();
          for (std::uint16_t j = 0; j < I.c; ++j) {
            what += "[" + std::to_string(regs[I.b + j].as_int()) + "]";
          }
          vm_.runtime_error(I.where,
                            "array subscript out of range: " + what);
        }
        classify_site(la, flat, lane_vp, lane_coords, rs, *stats_cur);
        regs[I.dst] = Value::from_bits(la.data[flat], la.flt);
        break;
      }
      case Op::kClassify:
        classify_site(arrays[I.a], regs[I.b].i, lane_vp, lane_coords, rs,
                      *stats_cur);
        break;
      case Op::kBroadcastCheck:
        // Walk: writes to a replicated array broadcast, independent of the
        // suppress/frontend classification short-circuit.
        if (arrays[I.a].arr->replicated()) ++stats_cur->broadcast;
        break;
      case Op::kArrStore: {
        WriteTarget t;
        t.kind = WriteTarget::Kind::kArray;
        t.obj = arrays[I.a].arr;
        t.index = regs[I.b].i;
        arena.writes.push_back(Write{t, regs[I.c], I.where});
        break;
      }
      case Op::kArrPut: {
        // Fused kClassify (+ kBroadcastCheck when arg bit0) + kArrStore.
        const LinkedArray& la = arrays[I.a];
        const std::int64_t flat = regs[I.b].i;
        classify_site(la, flat, lane_vp, lane_coords, rs, *stats_cur);
        if ((I.arg & 1) != 0 && la.arr->replicated()) ++stats_cur->broadcast;
        WriteTarget t;
        t.kind = WriteTarget::Kind::kArray;
        t.obj = la.arr;
        t.index = flat;
        arena.writes.push_back(Write{t, regs[I.c], I.where});
        break;
      }
      case Op::kUnary: {
        const Value& v = regs[I.a];
        switch (static_cast<UnaryOp>(I.arg)) {
          case UnaryOp::kNeg:
            regs[I.dst] =
                v.is_float ? Value::of_float(-v.f) : Value::of_int(-v.i);
            break;
          case UnaryOp::kNot:
            regs[I.dst] = Value::of_bool(!v.truthy());
            break;
          case UnaryOp::kBitNot:
            regs[I.dst] = Value::of_int(~v.as_int());
            break;
          case UnaryOp::kPlus:
            regs[I.dst] = v;
            break;
        }
        break;
      }
      case Op::kBinary: {
        const Value& a = regs[I.a];
        const Value& b = regs[I.b];
        const auto op = static_cast<BinaryOp>(I.arg);
        // Int fast paths for the common arithmetic/comparisons; floats and
        // the checked ops (div/mod) share eval_binary_op with the walk.
        if (!a.is_float && !b.is_float) {
          switch (op) {
            case BinaryOp::kAdd:
              regs[I.dst] = Value::of_int(a.i + b.i);
              ++ip;
              continue;
            case BinaryOp::kSub:
              regs[I.dst] = Value::of_int(a.i - b.i);
              ++ip;
              continue;
            case BinaryOp::kMul:
              regs[I.dst] = Value::of_int(a.i * b.i);
              ++ip;
              continue;
            case BinaryOp::kEq:
              regs[I.dst] = Value::of_bool(a.i == b.i);
              ++ip;
              continue;
            case BinaryOp::kNe:
              regs[I.dst] = Value::of_bool(a.i != b.i);
              ++ip;
              continue;
            case BinaryOp::kLt:
              regs[I.dst] = Value::of_bool(a.i < b.i);
              ++ip;
              continue;
            case BinaryOp::kGt:
              regs[I.dst] = Value::of_bool(a.i > b.i);
              ++ip;
              continue;
            case BinaryOp::kLe:
              regs[I.dst] = Value::of_bool(a.i <= b.i);
              ++ip;
              continue;
            case BinaryOp::kGe:
              regs[I.dst] = Value::of_bool(a.i >= b.i);
              ++ip;
              continue;
            default:
              break;
          }
        }
        regs[I.dst] = eval_binary_op(vm_, op, a, b, *I.where);
        break;
      }
      case Op::kIncDec: {
        const Value& old = regs[I.a];
        const std::int64_t delta = (I.arg & 1) != 0 ? 1 : -1;
        regs[I.dst] = old.is_float
                          ? Value::of_float(old.f + static_cast<double>(delta))
                          : Value::of_int(old.i + delta);
        break;
      }
      case Op::kCoerce:
        regs[I.dst] = regs[I.a].coerce(static_cast<ScalarKind>(I.arg));
        break;
      case Op::kJump:
        ip = static_cast<std::size_t>(I.jump);
        continue;
      case Op::kJumpIfFalse:
        if (!regs[I.a].truthy()) {
          ip = static_cast<std::size_t>(I.jump);
          continue;
        }
        break;
      case Op::kJumpIfTrue:
        if (regs[I.a].truthy()) {
          ip = static_cast<std::size_t>(I.jump);
          continue;
        }
        break;
      case Op::kAbs: {
        const Value& v = regs[I.a];
        regs[I.dst] = v.is_float ? Value::of_float(std::fabs(v.f))
                                 : Value::of_int(v.i < 0 ? -v.i : v.i);
        break;
      }
      case Op::kMinMax: {
        const Value& a = regs[I.a];
        const Value& b = regs[I.b];
        const bool take_min = (I.arg & 1) != 0;
        if (a.is_float || b.is_float) {
          regs[I.dst] = Value::of_float(
              take_min ? std::min(a.as_float(), b.as_float())
                       : std::max(a.as_float(), b.as_float()));
        } else {
          regs[I.dst] = Value::of_int(take_min ? std::min(a.i, b.i)
                                               : std::max(a.i, b.i));
        }
        break;
      }
      case Op::kPower2: {
        const std::int64_t kk = regs[I.a].as_int();
        if (kk < 0 || kk > 62) {
          vm_.runtime_error(I.where, "power2 argument out of range: " +
                                         std::to_string(kk));
        }
        regs[I.dst] = Value::of_int(std::int64_t{1} << kk);
        break;
      }
      case Op::kRand: {
        const std::uint64_t x = use_fe_rng ? vm_.fe_rng.next() : rng.next();
        regs[I.dst] = Value::of_int(static_cast<std::int64_t>(x >> 33));
        break;
      }
      case Op::kReduceBegin: {
        const LinkedReduce& R = reduces[I.a];
        rs.info = &R;
        rs.acc = reduce_identity_value(R.op, R.flt);
        rs.any = false;
        rs.enabled_any = false;
        rs.tuple = 0;
        rs.suppress = R.expr->partition_optimized == 1;
        rs.parent_vp = lane_vp;
        if (R.prod == 0) {
          ip = static_cast<std::size_t>(I.jump);  // straight to kReduceEnd
          continue;
        }
        // base_dims == n_dims for non-frontend spaces (and 0 on the
        // frontend), so the lane coordinate pointer covers the copy.
        for (std::size_t d = 0; d < R.base_dims; ++d) {
          rs.coords[d] = lane_coords[d];
        }
        for (std::size_t s = 0; s < R.n_sets; ++s) {
          rs.pos[s] = 0;
          rs.elem_vals[s] = (*R.values[s])[0];
          rs.coords[R.base_dims + s] = 0;
        }
        rs.vp = rs.parent_vp * R.prod;
        break;
      }
      case Op::kReduceFold: {
        const Value& v = regs[I.a];
        const ReduceKind op = rs.info->op;
        if (op == ReduceKind::kArb) {
          if (!rs.any) rs.acc = v;
        } else if (!rs.acc.is_float && !v.is_float &&
                   (op == ReduceKind::kMin || op == ReduceKind::kMax ||
                    op == ReduceKind::kAdd)) {
          // Int fast paths for the hot folds; everything else shares
          // fold_reduce_value with the walk.
          rs.acc = Value::of_int(op == ReduceKind::kAdd
                                     ? rs.acc.i + v.i
                                     : (op == ReduceKind::kMin
                                            ? std::min(rs.acc.i, v.i)
                                            : std::max(rs.acc.i, v.i)));
        } else {
          rs.acc = fold_reduce_value(op, rs.acc, v);
        }
        rs.any = true;
        rs.enabled_any = true;
        break;
      }
      case Op::kReduceSkipOthers:
        if (rs.enabled_any) {
          ip = static_cast<std::size_t>(I.jump);
          continue;
        }
        break;
      case Op::kReduceNext: {
        const LinkedReduce& R = *rs.info;
        rs.enabled_any = false;
        if (++rs.tuple >= R.prod) break;  // falls through to kReduceEnd
        for (std::size_t s = R.n_sets; s-- > 0;) {
          if (++rs.pos[s] < static_cast<std::size_t>(R.sizes[s])) break;
          rs.pos[s] = 0;
        }
        std::int64_t tuple_flat = 0;
        for (std::size_t s = 0; s < R.n_sets; ++s) {
          rs.elem_vals[s] = (*R.values[s])[rs.pos[s]];
          rs.coords[R.base_dims + s] = static_cast<std::int64_t>(rs.pos[s]);
          tuple_flat =
              tuple_flat * R.sizes[s] + static_cast<std::int64_t>(rs.pos[s]);
        }
        rs.vp = rs.parent_vp * R.prod + tuple_flat;
        ip = static_cast<std::size_t>(I.jump);
        continue;
      }
      case Op::kReduceEnd:
        regs[I.dst] = rs.info->flt ? Value::of_float(rs.acc.as_float())
                                   : rs.acc;
        break;
      case Op::kMemberBoundary:
        // Entering member I.a of a fused group: its stats land in their
        // own slot, and the lane RNG is reseeded with the member's own
        // statement id so rand() draws match the unfused execution.
        stats_cur = arena.stats.data() + I.a;
        if (k.uses_rand && !use_fe_rng) {
          rng.seed(vm_.base_seed ^
                   ((stmt_id + I.a) * 0x9e3779b97f4a7c15ull) ^
                   (static_cast<std::uint64_t>(lane_vp) +
                    0x5851f42d4c957f2dull));
        }
        break;
      case Op::kRet:
        results[static_cast<std::size_t>(result_slot)] = regs[I.a];
        return;
    }
    ++ip;
  }
}

void Engine::reset_arenas(const Kernel& k) {
  for (auto& a : arenas_) {
    a.writes.clear();
    a.spans.clear();
    a.stats.assign(k.num_members, AccessStats{});
    if (a.regs.size() < k.num_regs) a.regs.resize(k.num_regs);
  }
}

void Engine::run_lanes_pooled(const Kernel& k, LaneSpace& space,
                              const std::vector<std::int64_t>& active,
                              Frame* frame, std::uint64_t stmt_id,
                              std::vector<Value>& results) {
  // Native tier: both the plain try_run path and fused groups funnel
  // through here, so one hook covers every dispatch.  A false return
  // (emitter declined, toolchain missing, assumption mismatch, runtime
  // error flagged) leaves the arenas reset and falls through to bytecode.
  if (vm_.opts.engine == ExecEngine::kNative &&
      run_lanes_native(k, space, active, frame, stmt_id, results)) {
    return;
  }
  const auto n = static_cast<std::int64_t>(active.size());
  const std::function<void(unsigned, std::int64_t, std::int64_t)> body =
      [&](unsigned worker, std::int64_t b, std::int64_t e) {
        Arena& arena = arenas_[worker];
        const auto span_start = static_cast<std::uint32_t>(arena.writes.size());
        for (std::int64_t kk = b; kk < e; ++kk) {
          run_lane(k, space, active[static_cast<std::size_t>(kk)], kk, frame,
                   stmt_id, arena, results);
        }
        const auto count =
            static_cast<std::uint32_t>(arena.writes.size()) - span_start;
        if (count > 0) arena.spans.push_back(ChunkSpan{b, span_start, count});
      };
  const unsigned shards = vm_.machine.shard_count();
  if (shards > 1 && n > cm::ThreadPool::kInlineCutoff) {
    // Sharded dispatch (docs/SHARDING.md): one chunk per shard, so each
    // shard's lanes run on a single worker and its buffered writes form
    // one span.  commit_buffered() sorts spans by begin_k, which restores
    // the walk's lane order regardless of which worker ran which shard.
    const cm::ShardLayout layout(space.geom_size, shards);
    const auto ranges = shard_lane_ranges(space, active, layout);
    auto& sstats = vm_.machine.shard_stats();
    vm_.machine.pool().for_shards(shards, [&](unsigned worker, unsigned s) {
      const auto [b, e] = ranges[s];
      if (b >= e) return;
      body(worker, b, e);
      sstats[s].ops += 1;
      sstats[s].intra_lanes += static_cast<std::uint64_t>(e - b);
    });
    return;
  }
  vm_.machine.pool().parallel_for_indexed(0, n, body, /*min_grain=*/64);
}

void Engine::commit_buffered() {
  // Chunks are disjoint ascending lane ranges, so sorting the spans by
  // their first active-lane position recovers the walk's lane order for
  // conflict detection (first-seen value wins the error message).
  span_order_.clear();
  std::size_t total_writes = 0;
  for (auto& a : arenas_) {
    total_writes += a.writes.size();
    for (const auto& s : a.spans) span_order_.emplace_back(&s, &a);
  }
  std::sort(span_order_.begin(), span_order_.end(),
            [](const auto& x, const auto& y) {
              return x.first->begin_k < y.first->begin_k;
            });
  vm_.commit_begin(total_writes);
  for (const auto& [span, arena] : span_order_) {
    for (std::uint32_t w = 0; w < span->count; ++w) {
      vm_.commit_check(arena->writes[span->offset + w]);
    }
  }
  for (const auto& [span, arena] : span_order_) {
    for (std::uint32_t w = 0; w < span->count; ++w) {
      const Write& wr = arena->writes[span->offset + w];
      vm_.apply_write(wr.target, wr.value);
    }
  }
}

std::optional<std::vector<Value>> Engine::try_run(
    const Expr& expr, LaneSpace& space,
    const std::vector<std::int64_t>& active, Frame* frame,
    std::uint64_t stmt_id, bool commit, bool optimize) {
  const Kernel* kern =
      optimize ? compile_optimized_cached(expr) : compile_cached(expr);
  if (kern == nullptr) {
    ++fallback_statements_;
    return std::nullopt;
  }
  if (!link(*kern, space, frame)) {
    ++fallback_statements_;
    return std::nullopt;
  }
  ++compiled_statements_;

  std::vector<Value> results(active.size());
  reset_arenas(*kern);
  run_lanes_pooled(*kern, space, active, frame, stmt_id, results);

  AccessStats total;
  for (const auto& a : arenas_) total.merge(a.stats[0]);
  vm_.charge_dynamic_stats(total, space.geom_size);

  if (commit) commit_buffered();
  return results;
}

bool Engine::prepare_group(const Expr* const* stmts, std::size_t n,
                           LaneSpace& space, Frame* frame) {
  if (n < 2) return false;
  auto it = fused_cache_.find(stmts[0]);
  if (it == fused_cache_.end()) {
    it = fused_cache_.emplace(stmts[0], compile_fused(stmts, n)).first;
  }
  const Kernel* kern = it->second.get();
  if (kern == nullptr || kern->num_members != n) return false;
  if (!link(*kern, space, frame)) return false;
  group_kernel_ = kern;
  return true;
}

void Engine::run_group(LaneSpace& space,
                       const std::vector<std::int64_t>& active, Frame* frame,
                       std::uint64_t first_stmt_id,
                       std::vector<AccessStats>& member_stats) {
  const Kernel& kern = *group_kernel_;
  compiled_statements_ += kern.num_members;
  ++fused_groups_;
  std::vector<Value> results(active.size());
  reset_arenas(kern);
  run_lanes_pooled(kern, space, active, frame, first_stmt_id, results);
  member_stats.assign(kern.num_members, AccessStats{});
  for (const auto& a : arenas_) {
    for (std::uint32_t m = 0; m < kern.num_members; ++m) {
      member_stats[m].merge(a.stats[m]);
    }
  }
}

void Engine::commit_group() { commit_buffered(); }

}  // namespace uc::vm::detail::kernel

namespace uc::vm::detail {

Impl::~Impl() {
  if (kernel_engine_ != nullptr && std::getenv("UC_KERNEL_STATS") != nullptr) {
    std::fprintf(stderr,
                 "kernel: %llu compiled, %llu fallback, %zu cached\n",
                 static_cast<unsigned long long>(
                     kernel_engine_->compiled_statements()),
                 static_cast<unsigned long long>(
                     kernel_engine_->fallback_statements()),
                 kernel_engine_->cache_size());
  }
}

kernel::Engine& Impl::kernel_engine() {
  if (kernel_engine_ == nullptr) {
    kernel_engine_ = std::make_unique<kernel::Engine>(*this);
  }
  return *kernel_engine_;
}

}  // namespace uc::vm::detail
