// Native-tier dispatch: builds NativeArgs from the engine's linked operand
// state and runs lane chunks through the compiled entry point, with the
// same chunking, sharding and buffered-write spans as the pooled bytecode
// path so commit order and stats attribution are identical (docs/VM.md
// "Native tier").
#include <atomic>

#include "ucvm/kernel/kernel.hpp"

namespace uc::vm::detail::kernel {

bool Engine::run_lanes_native(const Kernel& k, LaneSpace& space,
                              const std::vector<std::int64_t>& active,
                              Frame* frame, std::uint64_t stmt_id,
                              std::vector<Value>& results) {
  // The frontend space shares one RNG stream across its single lane and
  // the emitted kernels only model the per-lane streams; frontend
  // statements are cheap scalar code anyway.
  if (space.frontend) return false;

  if (native_ == nullptr) {
    native::BackendOptions bopts;
    bopts.cache_dir = vm_.opts.native_cache_dir;
    bopts.cc = vm_.opts.native_cc;
    bopts.log = vm_.opts.log;
    native_ = std::make_unique<native::Backend>(std::move(bopts));
  }
  const native::Prepared* prep = native_->prepare(k);
  if (prep == nullptr) {
    ++native_fallbacks_;
    return false;
  }
  // The emitted L[] ancestor chain is sized for the engine's depth cap.
  if (max_depth_ + 1 >= kMaxDepth) {
    ++native_fallbacks_;
    return false;
  }

  // Validate the emit-time representation assumptions against the linked
  // state.  The static types come from sema, so mismatches only happen for
  // lane-local scalars whose dynamic Value drifted from its declared kind;
  // those statements run on the bytecode tier (identical results).
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    if (arrays_[i].flt != (prep->array_flt[i] != 0)) {
      native_->note_assume_failure();
      ++native_fallbacks_;
      return false;
    }
  }
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    const LinkedScalar& ls = scalars_[i];
    const bool want = prep->scalar_flt[i] != 0;
    if (ls.home == ScalarHome::kLaneLocal) {
      for (const Value& v : *ls.store) {
        if (v.is_float != want) {
          native_->note_assume_failure();
          ++native_fallbacks_;
          return false;
        }
      }
    } else if (ls.value->is_float != want) {
      native_->note_assume_failure();
      ++native_fallbacks_;
      return false;
    }
  }

  // Link-dependent dispatch tables, mirrored field by field from the
  // engine's linked operand state into member vectors whose capacity
  // persists across statements.
  nelems_.resize(elems_.size());
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    nelems_[i].vals = elems_[i].vals;
    nelems_[i].k = elems_[i].k;
    nelems_[i].width = elems_[i].width;
    nelems_[i].depth = elems_[i].depth;
  }
  nscalars_.resize(scalars_.size());
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    const LinkedScalar& ls = scalars_[i];
    native::NScalar& ns = nscalars_[i];
    ns.slot = ls.slot;
    ns.depth = ls.depth;
    switch (ls.home) {
      case ScalarHome::kGlobal:
        ns.home = 0;
        ns.i = ls.value->i;
        ns.f = ls.value->f;
        break;
      case ScalarHome::kFrame:
        ns.home = 1;
        ns.i = ls.value->i;
        ns.f = ls.value->f;
        break;
      case ScalarHome::kLaneLocal:
        ns.home = 2;
        ns.store = ls.store->data();
        ns.owner = ls.owner;
        break;
    }
  }
  narrays_.resize(arrays_.size());
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    const LinkedArray& la = arrays_[i];
    native::NArray& na = narrays_[i];
    na.data = la.data;
    na.owners = la.owners;
    na.vp_coords = la.vp_coords;
    na.adims = la.adims;
    na.astrides = la.astrides;
    na.obj = la.arr;
    na.rank = la.rank;
    na.mode = static_cast<std::uint8_t>(la.mode);
    na.geom_matches = la.geom_matches ? 1 : 0;
    na.slice = la.slice ? 1 : 0;
    na.replicated = la.arr->replicated() ? 1 : 0;
  }
  nreduces_.resize(reduces_.size());
  for (std::size_t i = 0; i < reduces_.size(); ++i) {
    const LinkedReduce& lr = reduces_[i];
    native::NReduce& nr = nreduces_[i];
    for (std::size_t s = 0; s < lr.n_sets; ++s) {
      nr.values[s] = lr.values[s]->data();
      nr.sizes[s] = lr.sizes[s];
    }
    nr.prod = lr.prod;
    nr.base_dims = static_cast<std::int64_t>(lr.base_dims);
    nr.suppress = lr.expr->partition_optimized == 1 ? 1 : 0;
  }
  // Ancestor-lane translation tables, indexed by depth as in run_lane.
  const std::int64_t* parent_lanes[kMaxDepth] = {};
  for (std::int32_t d = 1; d <= max_depth_; ++d) {
    parent_lanes[d - 1] =
        depth_spaces_[static_cast<std::size_t>(d) - 1]->parent_lane.data();
  }

  const cm::CostModel& cost = vm_.machine.cost_model();
  const auto n = static_cast<std::int64_t>(active.size());
  std::atomic<bool> failed{false};

  auto body = [&](unsigned worker, std::int64_t b, std::int64_t e) {
    Arena& arena = arenas_[worker];
    const auto span_start = arena.writes.size();
    // Stage writes into the high-water scratch buffer: growing it
    // zero-fills once, after which dispatches only pay for the writes
    // they actually produce.
    const auto scratch_need =
        static_cast<std::size_t>(e - b) * prep->max_writes_per_lane;
    if (arena.native_scratch.size() < scratch_need) {
      arena.native_scratch.resize(scratch_need);
    }
    native::NativeArgs args;
    args.k_begin = b;
    args.k_end = e;
    args.active = active.data();
    args.vps = space.vps.data();
    args.coords = space.coords.data();
    args.n_dims = static_cast<std::int64_t>(space.dims.size());
    args.parent_lanes = parent_lanes;
    args.max_depth = max_depth_;
    args.elems = nelems_.data();
    args.scalars = nscalars_.data();
    args.arrays = narrays_.data();
    args.reduces = nreduces_.data();
    args.results = results.data();
    args.writes = arena.native_scratch.data();
    args.stats = arena.stats.data();
    args.wheres = reinterpret_cast<const void* const*>(prep->wheres.data());
    args.frame = frame;
    args.stmt_id = stmt_id;
    args.base_seed = vm_.base_seed;
    args.news_op = cost.news_op;
    args.router_op = cost.router_op;
    prep->entry(&args);
    if (args.error != 0) {
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    if (args.writes_count > 0) {
      arena.writes.insert(
          arena.writes.end(), arena.native_scratch.begin(),
          arena.native_scratch.begin() +
              static_cast<std::ptrdiff_t>(args.writes_count));
      arena.spans.push_back(
          ChunkSpan{b, static_cast<std::uint32_t>(span_start),
                    static_cast<std::uint32_t>(args.writes_count)});
    }
  };

  native_->note_dispatch();
  const unsigned shards = vm_.machine.shard_count();
  if (shards > 1 && n > cm::ThreadPool::kInlineCutoff) {
    // Sharded dispatch, same layout as the bytecode path; the per-shard
    // op/lane accounting is applied only after a successful run so an
    // error fallback does not double-count when bytecode re-executes.
    const cm::ShardLayout layout(space.geom_size, shards);
    const auto ranges = shard_lane_ranges(space, active, layout);
    vm_.machine.pool().for_shards(shards, [&](unsigned worker, unsigned s) {
      const auto [b, e] = ranges[s];
      if (b >= e) return;
      body(worker, b, e);
    });
    if (!failed.load(std::memory_order_relaxed)) {
      auto& sstats = vm_.machine.shard_stats();
      for (unsigned s = 0; s < shards; ++s) {
        const auto [b, e] = ranges[s];
        if (b >= e) continue;
        sstats[s].ops += 1;
        sstats[s].intra_lanes += static_cast<std::uint64_t>(e - b);
      }
    }
  } else {
    // Compiled lanes are an order of magnitude cheaper than interpreted
    // ones, so the profitable chunk size is correspondingly larger: below
    // ~1k lanes the pool's fork-join handshake costs more than the whole
    // statement and the range runs inline (docs/SHARDING.md "Dispatch
    // latency and the host-time floor").
    vm_.machine.pool().parallel_for_indexed(0, n, body, /*min_grain=*/1024);
  }

  if (failed.load(std::memory_order_relaxed)) {
    // A lane hit a runtime error (bounds, division by zero, ...).  Discard
    // everything buffered and let the bytecode rerun raise the identical
    // error with its full message — errors are deterministic.
    reset_arenas(k);
    ++native_fallbacks_;
    return false;
  }
  return true;
}

}  // namespace uc::vm::detail::kernel
