// Bytecode optimisation pipeline for fused lane kernels (docs/VM.md
// "Fusion").
//
// Three passes over the straight-line code produced by lower_fused:
//
//   1. Value numbering with copy propagation.  A linear scan tables pure
//      expressions (constants, elem/scalar loads, arithmetic, array reads)
//      by the value numbers of their operands; a duplicate is rewritten to
//      a register copy of the canonical result.  The table honours control
//      flow without building a CFG: at every jump target, entries defined
//      after the earliest jump source targeting it are dropped, so a
//      surviving entry's definition dominates every later lookup.  The
//      reduction loop needs no extra care — kReduceBegin's forward jump to
//      kReduceEnd makes the whole loop body a dropped region at its exit,
//      and in-body entries are re-defined every iteration before reuse.
//      Registers with more than one static write (short-circuit and
//      ternary join registers) are never tabled.
//   2. Cross-member store-to-load forwarding.  Writes are buffered until
//      the fused group commits, so a later member's read of an element an
//      earlier member wrote must be satisfied from the buffered value: at
//      each kMemberBoundary the completed member's unconditional puts are
//      promoted to a forwarding table keyed (array, subscript value
//      numbers), and a later read either matches one exactly (it becomes a
//      register copy) or the whole fusion is rejected — the caller then
//      runs the members unfused.  The AST-level gate in the interpreter
//      makes rejection rare; this pass is the final authority.
//   3. Dead temporary elimination.  A reverse scan deletes instructions
//      whose only effect is an unused register result; stores,
//      classification, control flow, RNG draws and anything that can raise
//      a runtime error (div/mod, power2's range check, subscript bounds
//      checks) are roots.  Jump targets are then remapped onto the
//      compacted code.
//
// The pass never reorders instructions, so evaluation order, error sites
// and short-circuit behaviour are exactly the unoptimised kernel's; it
// only elides recomputation, which can shrink the dynamic communication
// statistics (an elided duplicate read is not re-classified) — modeled
// cycles only ever decrease.
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "ucvm/kernel/bytecode.hpp"

namespace uc::vm::detail::kernel {

namespace {

constexpr std::size_t kNoSource = std::numeric_limits<std::size_t>::max();

// Key tags for the value-numbering table.
enum Tag : std::uint64_t {
  kTConst = 1,
  kTBool,
  kTElem,
  kTReduceElem,
  kTScalar,
  kTUnary,
  kTAbs,
  kTIncDec,
  kTCoerce,
  kTBinary,
  kTMinMax,
  kTPower2,
  kTArrIndex,
  kTArrGet,
  kTArrLoad,
};

bool writes_dst(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kBool:
    case Op::kLoadElem:
    case Op::kLoadReduceElem:
    case Op::kLoadScalar:
    case Op::kArrIndex:
    case Op::kArrLoad:
    case Op::kArrGet:
    case Op::kUnary:
    case Op::kBinary:
    case Op::kIncDec:
    case Op::kCoerce:
    case Op::kAbs:
    case Op::kMinMax:
    case Op::kPower2:
    case Op::kRand:
    case Op::kReduceEnd:
      return true;
    default:
      return false;
  }
}

bool is_div_or_mod(std::uint8_t arg) {
  const auto op = static_cast<lang::BinaryOp>(arg);
  return op == lang::BinaryOp::kDiv || op == lang::BinaryOp::kMod;
}

bool deletable(const Inst& i) {
  switch (i.op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kBool:
    case Op::kLoadElem:
    case Op::kLoadReduceElem:
    case Op::kLoadScalar:
    case Op::kCoerce:
    case Op::kUnary:
    case Op::kAbs:
    case Op::kMinMax:
    case Op::kIncDec:
      return true;
    case Op::kBinary:
      return !is_div_or_mod(i.arg);  // div/mod raise; keep their error site
    default:
      return false;
  }
}

std::uint64_t ptr_key(const void* p) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
}

struct TabEntry {
  std::uint64_t vn = 0;
  std::uint16_t reg = 0;
  std::size_t def = 0;
};

struct CanonReg {
  std::uint16_t reg = 0;
  std::size_t def = 0;
};

class Optimizer {
 public:
  explicit Optimizer(Kernel& k) : k_(k) {}

  bool run() {
    analyze();
    if (!value_number()) return false;
    eliminate_dead();
    return true;
  }

 private:
  Kernel& k_;
  std::vector<std::uint8_t> write_count_;
  std::vector<std::size_t> earliest_;   // earliest jump source per target
  std::vector<std::uint8_t> guarded_;   // inside some forward-jump span

  std::vector<std::uint64_t> vn_of_;
  std::uint64_t next_vn_ = 1;
  std::map<std::vector<std::uint64_t>, TabEntry> table_;
  std::map<std::uint64_t, CanonReg> canon_;
  // kArrIndex results: value number of the flat address -> (array symbol,
  // subscript value numbers), so puts can be keyed the same way gets are.
  std::map<std::uint64_t,
           std::pair<const void*, std::vector<std::uint64_t>>> addr_of_;

  struct PendingPut {
    const void* sym = nullptr;
    std::vector<std::uint64_t> subs;
    std::uint16_t reg = 0;
    std::uint64_t vn = 0;
    bool forwardable = false;
  };
  std::vector<PendingPut> pending_puts_;
  std::set<const void*> pending_scalars_;
  std::map<std::pair<const void*, std::vector<std::uint64_t>>,
           std::pair<std::uint16_t, std::uint64_t>> forward_;
  std::set<const void*> written_arrays_;
  std::set<const void*> poisoned_arrays_;
  std::set<const void*> written_scalars_;

  void analyze() {
    const std::size_t n = k_.code.size();
    write_count_.assign(k_.num_regs, 0);
    for (const Inst& i : k_.code) {
      if (writes_dst(i.op) && write_count_[i.dst] < 2) ++write_count_[i.dst];
    }
    earliest_.assign(n + 1, kNoSource);
    std::vector<std::int32_t> diff(n + 2, 0);
    for (std::size_t s = 0; s < n; ++s) {
      const auto j = k_.code[s].jump;
      if (j < 0) continue;
      const auto t = static_cast<std::size_t>(j);
      if (t <= n && s < earliest_[t]) earliest_[t] = s;
      // Forward jumps make (s, t) a conditionally-skipped span.  Backward
      // jumps (the reduction odometer) add nothing: the loop body is
      // already spanned by kReduceBegin's forward jump to kReduceEnd.
      if (t > s + 1) {
        diff[s + 1] += 1;
        diff[t] -= 1;
      }
    }
    guarded_.assign(n, 0);
    std::int32_t depth = 0;
    for (std::size_t i = 0; i < n; ++i) {
      depth += diff[i];
      guarded_[i] = depth > 0 ? 1 : 0;
    }
  }

  // Rewrites an operand register to its canonical copy and returns its
  // value number.
  std::uint64_t use(std::uint16_t& r) {
    std::uint64_t v = vn_of_[r];
    if (v == 0) {
      v = next_vn_++;
      vn_of_[r] = v;
    }
    const auto it = canon_.find(v);
    if (it != canon_.end()) r = it->second.reg;
    return v;
  }

  // Value number of a register without operand rewriting (subscript block
  // registers must stay contiguous, so they are read in place).
  std::uint64_t vn_raw(std::uint16_t r) {
    std::uint64_t v = vn_of_[r];
    if (v == 0) {
      v = next_vn_++;
      vn_of_[r] = v;
    }
    return v;
  }

  void define(std::uint16_t dst, std::uint64_t v, std::size_t i) {
    if (write_count_[dst] > 1) {
      // Join registers (short-circuit / ternary destinations) must never
      // alias another register's value number: the scan sees only the last
      // static write, so a later use rewritten through that number would
      // read a path-dependent value.  Each static write gets its own
      // number — later uses still CSE against each other (the runtime
      // value cannot change between them), just never against a
      // single-path definition.
      vn_of_[dst] = next_vn_++;
      return;
    }
    vn_of_[dst] = v;
    if (canon_.find(v) == canon_.end()) canon_[v] = CanonReg{dst, i};
  }

  void fresh(std::uint16_t dst, std::size_t i) { define(dst, next_vn_++, i); }

  void rewrite_to_move(Inst& inst, std::uint16_t src) {
    inst.op = Op::kMove;
    inst.arg = 0;
    inst.a = src;
    inst.b = 0;
    inst.c = 0;
    inst.jump = -1;
  }

  // Tables a pure instruction; a duplicate becomes a register copy of the
  // canonical value.  Returns the instruction's value number.
  std::uint64_t pure(Inst& inst, std::size_t i,
                     std::vector<std::uint64_t> key) {
    const auto it = table_.find(key);
    if (it != table_.end()) {
      const TabEntry e = it->second;
      rewrite_to_move(inst, e.reg);
      define(inst.dst, e.vn, i);
      return e.vn;
    }
    const std::uint64_t v = next_vn_++;
    if (write_count_[inst.dst] == 1) {
      table_.emplace(std::move(key), TabEntry{v, inst.dst, i});
    }
    define(inst.dst, v, i);
    return v;
  }

  void drop_after(std::size_t def_limit) {
    for (auto it = table_.begin(); it != table_.end();) {
      it = it->second.def > def_limit ? table_.erase(it) : std::next(it);
    }
    for (auto it = canon_.begin(); it != canon_.end();) {
      it = it->second.def > def_limit ? canon_.erase(it) : std::next(it);
    }
  }

  // Promotes the completed member's buffered writes to the forwarding
  // table and invalidates array-read table entries the writes shadow.
  void member_boundary() {
    for (auto& p : pending_puts_) {
      written_arrays_.insert(p.sym);
      if (!p.forwardable) {
        poisoned_arrays_.insert(p.sym);
        continue;
      }
      forward_[{p.sym, p.subs}] = {p.reg, p.vn};
    }
    pending_puts_.clear();
    for (const void* s : pending_scalars_) written_scalars_.insert(s);
    pending_scalars_.clear();
    for (auto it = table_.begin(); it != table_.end();) {
      const auto& key = it->first;
      const bool array_read =
          key.size() >= 2 && (key[0] == kTArrGet || key[0] == kTArrLoad);
      if (array_read && written_arrays_.count(
                            reinterpret_cast<const void*>(
                                static_cast<std::uintptr_t>(key[1])))) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }

  bool value_number() {
    const std::size_t n = k_.code.size();
    vn_of_.assign(k_.num_regs, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (earliest_[i] != kNoSource) drop_after(earliest_[i]);
      Inst& inst = k_.code[i];
      switch (inst.op) {
        case Op::kConst:
          pure(inst, i, {kTConst, inst.a});
          break;
        case Op::kMove: {
          const auto v = use(inst.a);
          define(inst.dst, v, i);
          break;
        }
        case Op::kBool: {
          const auto v = use(inst.a);
          pure(inst, i, {kTBool, v});
          break;
        }
        case Op::kLoadElem:
          pure(inst, i, {kTElem, inst.a});
          break;
        case Op::kLoadReduceElem:
          pure(inst, i, {kTReduceElem, inst.b});
          break;
        case Op::kLoadScalar: {
          const void* sym = k_.scalars[inst.a].sym;
          if (written_scalars_.count(sym)) return false;
          pure(inst, i, {kTScalar, inst.a});
          break;
        }
        case Op::kStoreScalar: {
          const void* sym = k_.scalars[inst.a].sym;
          if (written_scalars_.count(sym)) return false;
          use(inst.b);
          pending_scalars_.insert(sym);
          break;
        }
        case Op::kUnary: {
          const auto v = use(inst.a);
          pure(inst, i, {kTUnary, inst.arg, v});
          break;
        }
        case Op::kAbs: {
          const auto v = use(inst.a);
          pure(inst, i, {kTAbs, v});
          break;
        }
        case Op::kIncDec: {
          const auto v = use(inst.a);
          pure(inst, i, {kTIncDec, inst.arg, v});
          break;
        }
        case Op::kCoerce: {
          const auto v = use(inst.a);
          pure(inst, i, {kTCoerce, inst.arg, v});
          break;
        }
        case Op::kBinary: {
          const auto va = use(inst.a);
          const auto vb = use(inst.b);
          pure(inst, i, {kTBinary, inst.arg, va, vb});
          break;
        }
        case Op::kMinMax: {
          const auto va = use(inst.a);
          const auto vb = use(inst.b);
          pure(inst, i, {kTMinMax, inst.arg, va, vb});
          break;
        }
        case Op::kPower2: {
          const auto v = use(inst.a);
          pure(inst, i, {kTPower2, v});
          break;
        }
        case Op::kRand:
          fresh(inst.dst, i);
          break;
        case Op::kArrIndex: {
          const void* sym = k_.arrays[inst.a].sym;
          std::vector<std::uint64_t> subs;
          subs.reserve(inst.c);
          for (std::uint16_t j = 0; j < inst.c; ++j) {
            subs.push_back(vn_raw(static_cast<std::uint16_t>(inst.b + j)));
          }
          std::vector<std::uint64_t> key{kTArrIndex, ptr_key(sym)};
          key.insert(key.end(), subs.begin(), subs.end());
          const auto v = pure(inst, i, std::move(key));
          addr_of_.emplace(v, std::make_pair(sym, std::move(subs)));
          break;
        }
        case Op::kArrGet: {
          const void* sym = k_.arrays[inst.a].sym;
          std::vector<std::uint64_t> subs;
          subs.reserve(inst.c);
          for (std::uint16_t j = 0; j < inst.c; ++j) {
            subs.push_back(vn_raw(static_cast<std::uint16_t>(inst.b + j)));
          }
          if (written_arrays_.count(sym)) {
            if (poisoned_arrays_.count(sym)) return false;
            const auto it = forward_.find({sym, subs});
            if (it == forward_.end()) return false;
            rewrite_to_move(inst, it->second.first);
            define(inst.dst, it->second.second, i);
            break;
          }
          std::vector<std::uint64_t> key{kTArrGet, ptr_key(sym)};
          key.insert(key.end(), subs.begin(), subs.end());
          pure(inst, i, std::move(key));
          break;
        }
        case Op::kArrLoad: {
          const void* sym = k_.arrays[inst.a].sym;
          if (written_arrays_.count(sym)) return false;
          const auto vflat = use(inst.b);
          pure(inst, i, {kTArrLoad, ptr_key(sym), vflat});
          break;
        }
        case Op::kClassify:
          use(inst.b);
          break;
        case Op::kBroadcastCheck:
          break;
        case Op::kArrStore:
        case Op::kArrPut: {
          const void* sym = k_.arrays[inst.a].sym;
          if (written_arrays_.count(sym)) return false;
          const auto vflat = use(inst.b);
          const auto vval = use(inst.c);
          PendingPut p;
          p.sym = sym;
          p.reg = inst.c;
          p.vn = vval;
          p.forwardable = guarded_[i] == 0;
          const auto ad = addr_of_.find(vflat);
          if (ad != addr_of_.end() && ad->second.first == sym) {
            p.subs = ad->second.second;
          } else {
            p.forwardable = false;
          }
          pending_puts_.push_back(std::move(p));
          break;
        }
        case Op::kMemberBoundary:
          member_boundary();
          break;
        case Op::kJump:
        case Op::kReduceBegin:
        case Op::kReduceSkipOthers:
        case Op::kReduceNext:
          break;
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
        case Op::kReduceFold:
        case Op::kRet:
          use(inst.a);
          break;
        case Op::kReduceEnd:
          fresh(inst.dst, i);
          break;
      }
    }
    return true;
  }

  void mark_uses(const Inst& inst, std::vector<std::uint8_t>& needed) {
    switch (inst.op) {
      case Op::kMove:
      case Op::kBool:
      case Op::kUnary:
      case Op::kAbs:
      case Op::kIncDec:
      case Op::kCoerce:
      case Op::kPower2:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
      case Op::kReduceFold:
      case Op::kRet:
        needed[inst.a] = 1;
        break;
      case Op::kBinary:
      case Op::kMinMax:
        needed[inst.a] = 1;
        needed[inst.b] = 1;
        break;
      case Op::kArrIndex:
      case Op::kArrGet:
        for (std::uint16_t j = 0; j < inst.c; ++j) {
          needed[static_cast<std::uint16_t>(inst.b + j)] = 1;
        }
        break;
      case Op::kArrLoad:
      case Op::kClassify:
      case Op::kStoreScalar:
        needed[inst.b] = 1;
        break;
      case Op::kArrStore:
      case Op::kArrPut:
        needed[inst.b] = 1;
        needed[inst.c] = 1;
        break;
      default:
        break;
    }
  }

  void eliminate_dead() {
    const std::size_t n = k_.code.size();
    std::vector<std::uint8_t> needed(k_.num_regs, 0);
    std::vector<std::uint8_t> keep(n, 0);
    for (std::size_t i = n; i-- > 0;) {
      const Inst& inst = k_.code[i];
      // Definitions linearly precede uses, and every static write of a
      // needed register is kept (join registers have several), so one
      // reverse sweep suffices.
      if (deletable(inst) && !needed[inst.dst]) continue;
      keep[i] = 1;
      mark_uses(inst, needed);
    }
    std::vector<std::int32_t> new_idx(n + 1, 0);
    std::int32_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      new_idx[i] = cnt;
      if (keep[i]) ++cnt;
    }
    new_idx[n] = cnt;
    std::vector<Inst> out;
    out.reserve(static_cast<std::size_t>(cnt));
    for (std::size_t i = 0; i < n; ++i) {
      if (!keep[i]) continue;
      Inst inst = k_.code[i];
      // A deleted jump target falls through to the next surviving
      // instruction — deleted instructions were semantic no-ops.
      if (inst.jump >= 0) inst.jump = new_idx[inst.jump];
      out.push_back(inst);
    }
    k_.code = std::move(out);
  }
};

}  // namespace

bool optimize_kernel(Kernel& k) { return Optimizer(k).run(); }

}  // namespace uc::vm::detail::kernel
