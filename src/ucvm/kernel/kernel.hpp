// The lane-kernel engine: compile-once-per-statement bytecode execution
// for eval_lanes (docs/VM.md).  One Engine lives inside each vm Impl; it
// owns the kernel cache (keyed by Expr*), the per-execution link tables,
// and the per-worker arenas that make steady-state lane execution
// allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ucvm/interp_detail.hpp"
#include "ucvm/kernel/bytecode.hpp"
#include "ucvm/native/native.hpp"

namespace uc::vm::detail::kernel {

class Engine {
 public:
  explicit Engine(Impl& vm);

  // Runs one synchronous statement expression over the active lanes on the
  // bytecode engine: merges comm stats, charges dynamic communication,
  // commits writes with the same lane-order conflict checking as the walk,
  // and returns the per-lane values.  Returns nullopt when the expression
  // cannot be compiled or linked against the current space — the caller
  // then falls back to the tree walk (which reproduces any error the link
  // step declined to raise, e.g. an array used before its declaration).
  // With optimize set the statement compiles through the fusion pipeline
  // (CSE + dead-temporary elimination, separate cache); outputs are
  // identical, dynamic comm stats can only shrink.
  std::optional<std::vector<Value>> try_run(
      const Expr& expr, LaneSpace& space,
      const std::vector<std::int64_t>& active, Frame* frame,
      std::uint64_t stmt_id, bool commit, bool optimize = false);

  // --- fused statement groups (docs/VM.md "Fusion") ---
  // Three-phase protocol so the driver can interleave its per-member cost
  // charging (which may throw a TransientFault) with execution while the
  // whole group stays one transactional unit:
  //   1. prepare_group: compile (cached) + link.  No state is touched on
  //      failure — the caller falls back to running the members unfused.
  //   2. run_group: execute the lanes, buffering writes in the arenas and
  //      collecting per-member comm stats; charges nothing itself.
  //   3. commit_group: conflict-check and apply the buffered writes in
  //      lane order, exactly like an unfused statement's commit.
  bool prepare_group(const Expr* const* stmts, std::size_t n,
                     LaneSpace& space, Frame* frame);
  void run_group(LaneSpace& space, const std::vector<std::int64_t>& active,
                 Frame* frame, std::uint64_t first_stmt_id,
                 std::vector<AccessStats>& member_stats);
  void commit_group();

  // Introspection for tests and ucc bench.
  std::uint64_t compiled_statements() const { return compiled_statements_; }
  std::uint64_t fallback_statements() const { return fallback_statements_; }
  std::uint64_t fused_groups() const { return fused_groups_; }
  std::size_t cache_size() const { return cache_.size(); }

  // Native tier (engine == kNative): lazily constructed backend, null
  // until the first native dispatch attempt.  native_fallbacks counts
  // statement executions that wanted native but ran on bytecode.
  const native::Backend* native_backend() const { return native_.get(); }
  std::uint64_t native_fallbacks() const { return native_fallbacks_; }

 private:
  // --- linked (per-execution) operand forms ---
  struct LinkedElem {
    const std::int64_t* vals = nullptr;  // owning space's elem_vals.data()
    std::int32_t depth = 0;   // spaces up from the statement space
    std::uint16_t k = 0;      // position within that space's elems
    std::uint16_t width = 0;  // that space's elems.size()
  };
  enum class ScalarHome : std::uint8_t { kGlobal, kFrame, kLaneLocal };
  struct LinkedScalar {
    ScalarHome home = ScalarHome::kGlobal;
    std::int32_t slot = 0;
    std::int32_t depth = 0;               // kLaneLocal: spaces up
    LaneSpace* owner = nullptr;           // kLaneLocal
    std::vector<Value>* store = nullptr;  // kLaneLocal: owner->locals[slot]
    const Value* value = nullptr;         // kGlobal/kFrame: the slot's scalar
                                          // (stable: writes are buffered)
  };
  enum class AccMode : std::uint8_t { kFrontend, kLocalReplicated, kRemote };
  struct LinkedArray {
    ArrayObj* arr = nullptr;
    ArrayPtr keepalive;  // owning handle for the statement's duration
    AccMode mode = AccMode::kRemote;
    bool geom_matches = false;  // lane dims == array dims (and rank <= 8)
    std::int32_t reduce = -1;
    // Hot-loop caches (valid for the statement: no allocation happens
    // while lanes run, so the pointers stay stable).
    const cm::Bits* data = nullptr;
    const cm::VpIndex* owners = nullptr;
    const std::int64_t* vp_coords = nullptr;  // geom_matches: coord_table()
    const std::int64_t* adims = nullptr;
    const std::int64_t* astrides = nullptr;
    std::uint32_t rank = 0;
    bool flt = false;
    bool slice = false;
  };
  struct LinkedReduce {
    const lang::ReduceExpr* expr = nullptr;
    std::size_t n_sets = 0;
    const std::vector<std::int64_t>* values[kMaxReduceSets] = {};
    std::int64_t sizes[kMaxReduceSets] = {};
    std::int64_t prod = 1;
    bool flt = false;
    lang::ReduceKind op = lang::ReduceKind::kAdd;
    std::size_t base_dims = 0;  // outer dims copied into the inner coords
    std::size_t n_dims = 0;     // base_dims + n_sets
  };

  // --- per-lane reduction state (at most one live: no nesting) ---
  struct ReduceState {
    const LinkedReduce* info = nullptr;
    Value acc;
    bool any = false;
    bool enabled_any = false;
    bool suppress = false;
    std::int64_t tuple = 0;
    std::int64_t parent_vp = 0;
    std::int64_t vp = 0;
    std::size_t pos[kMaxReduceSets] = {};
    std::int64_t elem_vals[kMaxReduceSets] = {};
    std::int64_t coords[8] = {};
  };

  // --- per-worker arena: reused across statements, zero steady-state
  // allocation ---
  struct ChunkSpan {
    std::int64_t begin_k = 0;  // first active-lane position of the chunk
    std::uint32_t offset = 0;  // into Arena::writes
    std::uint32_t count = 0;
  };
  struct Arena {
    std::vector<Value> regs;
    std::vector<Write> writes;
    std::vector<ChunkSpan> spans;
    // One slot per kernel member (plain statements use slot 0); fused
    // kernels switch slots at kMemberBoundary so the driver can charge
    // and attribute each member's communication separately.
    std::vector<AccessStats> stats;
    // Reused across lanes: kReduceBegin reinitialises every field that is
    // read afterwards, so stale state from a previous lane is never seen.
    ReduceState rs;
    // Native-tier write staging: the compiled entry point fills this
    // high-water-sized buffer and only the used prefix is copied into
    // `writes`, so the per-dispatch cost tracks actual writes instead of
    // the worst-case capacity (a resize of `writes` itself would
    // zero-fill the whole worst case every statement).
    std::vector<Write> native_scratch;
  };

  // Deepest ancestor-space chain a kernel may reference.
  static constexpr std::int32_t kMaxDepth = 32;

  const Kernel* compile_cached(const Expr& expr);
  const Kernel* compile_optimized_cached(const Expr& expr);
  bool link(const Kernel& k, LaneSpace& space, Frame* frame);
  void reset_arenas(const Kernel& k);
  void run_lanes_pooled(const Kernel& k, LaneSpace& space,
                        const std::vector<std::int64_t>& active, Frame* frame,
                        std::uint64_t stmt_id, std::vector<Value>& results);
  // Native-tier dispatch (native_exec.cpp): prepares the kernel through the
  // backend, validates the emit-time representation assumptions against the
  // linked state, and runs the lanes through the compiled entry point with
  // the same chunking/sharding as the pooled bytecode path.  Returns false
  // (with the arenas reset) when the statement must run on bytecode
  // instead — not prepared, assumptions failed, or the kernel flagged a
  // runtime error that the deterministic bytecode rerun will re-raise with
  // its full message.
  bool run_lanes_native(const Kernel& k, LaneSpace& space,
                        const std::vector<std::int64_t>& active, Frame* frame,
                        std::uint64_t stmt_id, std::vector<Value>& results);
  void commit_buffered();
  void run_lane(const Kernel& k, LaneSpace& space, std::int64_t lane,
                std::int64_t result_slot, Frame* frame, std::uint64_t stmt_id,
                Arena& arena, std::vector<Value>& results);
  void classify_site(const LinkedArray& la, std::int64_t flat,
                     std::int64_t lane_vp, const std::int64_t* lane_coords,
                     const ReduceState& rs, AccessStats& stats) const;

  Impl& vm_;
  std::unordered_map<const Expr*, std::unique_ptr<Kernel>> cache_;
  // Optimised single-statement kernels (fuse=on) and fused group kernels
  // keyed by their first member's statement expression.
  std::unordered_map<const Expr*, std::unique_ptr<Kernel>> opt_cache_;
  std::unordered_map<const Expr*, std::unique_ptr<Kernel>> fused_cache_;
  const Kernel* group_kernel_ = nullptr;  // linked by prepare_group
  // Link state, valid for the duration of one try_run call.
  std::vector<LinkedElem> elems_;
  std::vector<LinkedScalar> scalars_;
  std::vector<LinkedArray> arrays_;
  std::vector<LinkedReduce> reduces_;
  std::vector<LaneSpace*> depth_spaces_;  // [0]=statement space, then parents
  std::int32_t max_depth_ = 0;
  std::vector<Arena> arenas_;
  std::vector<std::pair<const ChunkSpan*, Arena*>> span_order_;
  std::uint64_t compiled_statements_ = 0;
  std::uint64_t fallback_statements_ = 0;
  std::uint64_t fused_groups_ = 0;
  std::unique_ptr<native::Backend> native_;
  // Native dispatch tables, mirrored from the linked operand state on
  // every dispatch.  Engine members (not locals) so their heap capacity
  // is reused across statements like the link-state vectors above.
  std::vector<native::NElem> nelems_;
  std::vector<native::NScalar> nscalars_;
  std::vector<native::NArray> narrays_;
  std::vector<native::NReduce> nreduces_;
  std::uint64_t native_fallbacks_ = 0;
};

}  // namespace uc::vm::detail::kernel
