// Lowering from sema'd expression trees to lane-kernel bytecode.
//
// The lowering mirrors Impl::eval in interp_expr.cpp operation for
// operation: the same evaluation order, the same classification points,
// the same coercions and the same error sites, so a compiled statement is
// observationally identical to the tree walk.  Anything the lowering does
// not cover is rejected by can_compile_expr and runs on the walk engine.
#include <bit>

#include "ucvm/kernel/bytecode.hpp"

#include "uclang/symbols.hpp"

namespace uc::vm::detail::kernel {

using lang::AssignOp;
using lang::BinaryOp;
using lang::BuiltinId;
using lang::Expr;
using lang::ExprKind;
using lang::Symbol;
using lang::SymbolKind;

namespace {

bool is_scalar_var(const Symbol* sym) {
  if (sym == nullptr) return false;
  if (sym->kind != SymbolKind::kGlobalVar &&
      sym->kind != SymbolKind::kLocalVar && sym->kind != SymbolKind::kParam) {
    return false;
  }
  return !sym->type.is_array();
}

// An assignable / subscriptable site the lowering understands.  The walk
// raises errors for anything else ("expression is not assignable", arrays
// used as scalars); rejecting here routes those statements to the walk so
// the error text and timing stay identical.
bool is_array_base(const Expr& e) {
  if (e.kind != ExprKind::kIdent) return false;
  const auto* sym = static_cast<const lang::IdentExpr&>(e).symbol;
  return sym != nullptr && (sym->kind == SymbolKind::kGlobalVar ||
                            sym->kind == SymbolKind::kLocalVar ||
                            sym->kind == SymbolKind::kParam);
}

bool can_compile(const Expr& e, bool in_reduce) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
      return true;
    case ExprKind::kStringLit:
      return false;  // meaningful only inside print(), which we reject
    case ExprKind::kIdent: {
      const auto* sym = static_cast<const lang::IdentExpr&>(e).symbol;
      if (sym == nullptr) return false;
      if (sym->has_const_value) return true;
      if (sym->kind == SymbolKind::kIndexElem) return true;
      return is_scalar_var(sym);
    }
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const lang::SubscriptExpr&>(e);
      if (!is_array_base(*s.base)) return false;
      if (s.indices.size() > kMaxSubscripts) return false;
      for (const auto& idx : s.indices) {
        if (!can_compile(*idx, in_reduce)) return false;
      }
      return true;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const lang::CallExpr&>(e);
      if (c.symbol == nullptr || c.symbol->kind != SymbolKind::kBuiltin) {
        return false;  // user functions keep the full walk machinery
      }
      std::size_t want_args = 0;
      switch (static_cast<BuiltinId>(c.symbol->builtin_id)) {
        case BuiltinId::kPower2:
        case BuiltinId::kAbs:
          want_args = 1;
          break;
        case BuiltinId::kRand:
          want_args = 0;
          break;
        case BuiltinId::kMin2:
        case BuiltinId::kMax2:
          want_args = 2;
          break;
        case BuiltinId::kSrand:   // front-end global state
        case BuiltinId::kSwap:    // double-lvalue side effect
        case BuiltinId::kPrint:   // per-lane output buffers
          return false;
      }
      if (c.args.size() != want_args) return false;
      for (const auto& a : c.args) {
        if (!can_compile(*a, in_reduce)) return false;
      }
      return true;
    }
    case ExprKind::kUnary:
      return can_compile(*static_cast<const lang::UnaryExpr&>(e).operand,
                         in_reduce);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      return can_compile(*b.lhs, in_reduce) && can_compile(*b.rhs, in_reduce);
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const lang::AssignExpr&>(e);
      const bool lhs_ok =
          (a.lhs->kind == ExprKind::kIdent &&
           is_scalar_var(static_cast<const lang::IdentExpr&>(*a.lhs).symbol)) ||
          (a.lhs->kind == ExprKind::kSubscript &&
           can_compile(*a.lhs, in_reduce));
      return lhs_ok && can_compile(*a.rhs, in_reduce);
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      return can_compile(*t.cond, in_reduce) &&
             can_compile(*t.then_expr, in_reduce) &&
             can_compile(*t.else_expr, in_reduce);
    }
    case ExprKind::kReduce: {
      if (in_reduce) return false;  // nested reductions stay on the walk
      const auto& r = static_cast<const lang::ReduceExpr&>(e);
      if (r.index_set_syms.size() != r.index_sets.size()) return false;
      if (r.index_set_syms.empty() ||
          r.index_set_syms.size() > kMaxReduceSets) {
        return false;
      }
      for (const Symbol* s : r.index_set_syms) {
        if (s == nullptr || s->index_set == nullptr ||
            s->index_set->elem == nullptr) {
          return false;
        }
      }
      for (const auto& arm : r.arms) {
        if (arm.pred && !can_compile(*arm.pred, /*in_reduce=*/true)) {
          return false;
        }
        if (!can_compile(*arm.value, /*in_reduce=*/true)) return false;
      }
      if (r.others && !can_compile(*r.others, /*in_reduce=*/true)) {
        return false;
      }
      return true;
    }
    case ExprKind::kIncDec: {
      const auto& i = static_cast<const lang::IncDecExpr&>(e);
      if (i.operand->kind == ExprKind::kIdent) {
        return is_scalar_var(
            static_cast<const lang::IdentExpr&>(*i.operand).symbol);
      }
      if (i.operand->kind == ExprKind::kSubscript) {
        return can_compile(*i.operand, in_reduce);
      }
      return false;
    }
  }
  return false;
}

// Bit-identical Value comparison for constant pooling (Value::operator==
// compares across representations, which would merge of_int(1) with
// of_float(1.0)).
bool same_const(const Value& a, const Value& b) {
  return a.is_float == b.is_float && a.i == b.i &&
         std::bit_cast<std::uint64_t>(a.f) == std::bit_cast<std::uint64_t>(b.f);
}

class Lowerer {
 public:
  explicit Lowerer(Kernel& k, bool optimize = false)
      : k_(k), optimize_(optimize) {}

  void lower(const Expr& root) {
    const std::uint16_t r = expr(root);
    emit(Op::kRet, 0, 0, r);
    k_.num_regs = next_reg_;
  }

  // Lowers several consecutive statements into one kernel.  Members 1..n-1
  // are preceded by a kMemberBoundary (a = member index) so the executor
  // can switch its stats slot and reseed the lane RNG; only the last
  // member's value is returned.
  void lower_fused(const Expr* const* stmts, std::size_t n) {
    std::uint16_t r = 0;
    for (std::size_t m = 0; m < n; ++m) {
      if (m != 0) {
        emit(Op::kMemberBoundary, 0, 0, static_cast<std::uint16_t>(m));
      }
      r = expr(*stmts[m]);
    }
    emit(Op::kRet, 0, 0, r);
    k_.num_members = static_cast<std::uint32_t>(n);
    k_.num_regs = next_reg_;
  }

 private:
  Kernel& k_;
  bool optimize_ = false;
  std::uint32_t next_reg_ = 0;
  const lang::ReduceExpr* cur_reduce_ = nullptr;
  std::int32_t cur_reduce_slot_ = -1;

  std::uint16_t alloc() { return static_cast<std::uint16_t>(next_reg_++); }

  std::size_t emit(Op op, std::uint8_t arg = 0, std::uint16_t dst = 0,
                   std::uint16_t a = 0, std::uint16_t b = 0,
                   std::uint16_t c = 0, const Expr* where = nullptr) {
    Inst i;
    i.op = op;
    i.arg = arg;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.c = c;
    i.where = where;
    k_.code.push_back(i);
    return k_.code.size() - 1;
  }

  // Points the jump of instruction `at` just past the current end.
  void patch(std::size_t at) {
    k_.code[at].jump = static_cast<std::int32_t>(k_.code.size());
  }

  std::uint16_t pool_const(const Value& v) {
    for (std::size_t i = 0; i < k_.pool.size(); ++i) {
      if (same_const(k_.pool[i], v)) return static_cast<std::uint16_t>(i);
    }
    k_.pool.push_back(v);
    return static_cast<std::uint16_t>(k_.pool.size() - 1);
  }

  std::uint16_t elem_slot(const Symbol* sym) {
    for (std::size_t i = 0; i < k_.elems.size(); ++i) {
      if (k_.elems[i].sym == sym) return static_cast<std::uint16_t>(i);
    }
    k_.elems.push_back(ElemRef{sym});
    return static_cast<std::uint16_t>(k_.elems.size() - 1);
  }

  std::uint16_t scalar_slot(const Symbol* sym) {
    for (std::size_t i = 0; i < k_.scalars.size(); ++i) {
      if (k_.scalars[i].sym == sym) return static_cast<std::uint16_t>(i);
    }
    k_.scalars.push_back(ScalarRef{sym});
    return static_cast<std::uint16_t>(k_.scalars.size() - 1);
  }

  std::uint16_t array_slot(const Symbol* sym) {
    for (std::size_t i = 0; i < k_.arrays.size(); ++i) {
      if (k_.arrays[i].sym == sym && k_.arrays[i].reduce == cur_reduce_slot_) {
        return static_cast<std::uint16_t>(i);
      }
    }
    k_.arrays.push_back(ArrayRef{sym, cur_reduce_slot_});
    return static_cast<std::uint16_t>(k_.arrays.size() - 1);
  }

  struct Addr {
    std::uint16_t site = 0;
    std::uint16_t flat = 0;
  };

  // Lowers `e` into the caller-chosen register when it is a leaf (no kMove
  // needed); compound index expressions evaluate into their own register
  // and move.  Evaluation order is unchanged either way.
  void expr_into(const Expr& e, std::uint16_t dst) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        emit(Op::kConst, 0, dst,
             pool_const(Value::of_int(
                 static_cast<const lang::IntLitExpr&>(e).value)));
        return;
      case ExprKind::kFloatLit:
        emit(Op::kConst, 0, dst,
             pool_const(Value::of_float(
                 static_cast<const lang::FloatLitExpr&>(e).value)));
        return;
      case ExprKind::kIdent: {
        const auto& id = static_cast<const lang::IdentExpr&>(e);
        const Symbol* sym = id.symbol;
        if (sym->has_const_value) {
          emit(Op::kConst, 0, dst, pool_const(Value::of_int(sym->const_value)));
          return;
        }
        if (sym->kind == SymbolKind::kIndexElem) {
          // A reduction's own elements shadow outer bindings (innermost
          // wins, matching LaneSpace::elem_value's reverse scan).
          if (cur_reduce_ != nullptr) {
            const auto& sets = cur_reduce_->index_set_syms;
            for (std::size_t k = sets.size(); k-- > 0;) {
              if (sets[k]->index_set->elem == sym) {
                emit(Op::kLoadReduceElem, 0, dst, 0,
                     static_cast<std::uint16_t>(k));
                return;
              }
            }
          }
          emit(Op::kLoadElem, 0, dst, elem_slot(sym));
          return;
        }
        emit(Op::kLoadScalar, 0, dst, scalar_slot(sym));
        return;
      }
      default:
        break;
    }
    const std::uint16_t r = expr(e);
    emit(Op::kMove, 0, dst, r);
  }

  // Evaluates the subscripts in order into a contiguous register block.
  // Returns the block start; the caller emits the indexing instruction
  // (kArrIndex or fused kArrGet, both with the walk's "array subscript out
  // of range" bounds check).
  std::uint16_t subscript_block(const lang::SubscriptExpr& sub) {
    const auto n = static_cast<std::uint16_t>(sub.indices.size());
    const auto block = static_cast<std::uint16_t>(next_reg_);
    next_reg_ += n;
    for (std::uint16_t k = 0; k < n; ++k) {
      expr_into(*sub.indices[k], static_cast<std::uint16_t>(block + k));
    }
    return block;
  }

  Addr subscript_addr(const lang::SubscriptExpr& sub) {
    const auto& id = static_cast<const lang::IdentExpr&>(*sub.base);
    const std::uint16_t site = array_slot(id.symbol);
    const std::uint16_t block = subscript_block(sub);
    const std::uint16_t flat = alloc();
    emit(Op::kArrIndex, 0, flat, site, block,
         static_cast<std::uint16_t>(sub.indices.size()), &sub);
    return Addr{site, flat};
  }

  std::uint16_t expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kIdent: {
        const std::uint16_t r = alloc();
        expr_into(e, r);
        return r;
      }
      case ExprKind::kSubscript: {
        // Rvalue read: one fused index+classify+load instruction (same
        // order and error site as the unfused walk sequence).
        const auto& sub = static_cast<const lang::SubscriptExpr&>(e);
        const auto& id = static_cast<const lang::IdentExpr&>(*sub.base);
        const std::uint16_t site = array_slot(id.symbol);
        const std::uint16_t block = subscript_block(sub);
        const std::uint16_t r = alloc();
        emit(Op::kArrGet, 0, r, site, block,
             static_cast<std::uint16_t>(sub.indices.size()), &sub);
        return r;
      }
      case ExprKind::kCall:
        return call(static_cast<const lang::CallExpr&>(e));
      case ExprKind::kUnary: {
        const auto& u = static_cast<const lang::UnaryExpr&>(e);
        const std::uint16_t v = expr(*u.operand);
        const std::uint16_t r = alloc();
        emit(Op::kUnary, static_cast<std::uint8_t>(u.op), r, v);
        return r;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const lang::BinaryExpr&>(e);
        if (b.op == BinaryOp::kLogAnd || b.op == BinaryOp::kLogOr) {
          const bool is_and = b.op == BinaryOp::kLogAnd;
          const std::uint16_t dst = alloc();
          const std::uint16_t l = expr(*b.lhs);
          const std::size_t shortcut =
              emit(is_and ? Op::kJumpIfFalse : Op::kJumpIfTrue, 0, 0, l);
          const std::uint16_t r = expr(*b.rhs);
          emit(Op::kBool, 0, dst, r);
          const std::size_t done = emit(Op::kJump);
          patch(shortcut);
          emit(Op::kConst, 0, dst, pool_const(Value::of_bool(!is_and)));
          patch(done);
          return dst;
        }
        const std::uint16_t l = expr(*b.lhs);
        const std::uint16_t r = expr(*b.rhs);
        const std::uint16_t dst = alloc();
        emit(Op::kBinary, static_cast<std::uint8_t>(b.op), dst, l, r, 0, &e);
        return dst;
      }
      case ExprKind::kAssign:
        return assign(static_cast<const lang::AssignExpr&>(e));
      case ExprKind::kTernary: {
        const auto& t = static_cast<const lang::TernaryExpr&>(e);
        const std::uint16_t dst = alloc();
        const std::uint16_t c = expr(*t.cond);
        const std::size_t to_else = emit(Op::kJumpIfFalse, 0, 0, c);
        const std::uint16_t tv = expr(*t.then_expr);
        emit(Op::kMove, 0, dst, tv);
        const std::size_t done = emit(Op::kJump);
        patch(to_else);
        const std::uint16_t ev = expr(*t.else_expr);
        emit(Op::kMove, 0, dst, ev);
        patch(done);
        return dst;
      }
      case ExprKind::kReduce:
        return reduce(static_cast<const lang::ReduceExpr&>(e));
      case ExprKind::kIncDec:
        return incdec(static_cast<const lang::IncDecExpr&>(e));
      case ExprKind::kStringLit:
        break;  // unreachable: can_compile rejected it
    }
    const std::uint16_t r = alloc();
    emit(Op::kConst, 0, r, pool_const(Value::of_int(0)));
    return r;
  }

  std::uint16_t assign(const lang::AssignExpr& a) {
    // Walk order: rhs first, then lhs resolution (subscripts + bounds),
    // then compound read/classify/combine, coercion to the lhs type,
    // write-side classification (+ broadcast for replicated arrays), and
    // finally the buffered store.
    std::uint16_t result = expr(*a.rhs);
    BinaryOp op = BinaryOp::kAdd;
    bool compound = a.op != AssignOp::kAssign;
    switch (a.op) {
      case AssignOp::kAdd: op = BinaryOp::kAdd; break;
      case AssignOp::kSub: op = BinaryOp::kSub; break;
      case AssignOp::kMul: op = BinaryOp::kMul; break;
      case AssignOp::kDiv: op = BinaryOp::kDiv; break;
      case AssignOp::kMod: op = BinaryOp::kMod; break;
      case AssignOp::kAssign: break;
    }
    const auto scalar = static_cast<std::uint8_t>(a.lhs->type.scalar);
    if (a.lhs->kind == ExprKind::kIdent) {
      const auto& id = static_cast<const lang::IdentExpr&>(*a.lhs);
      const std::uint16_t slot = scalar_slot(id.symbol);
      if (compound) {
        const std::uint16_t old = alloc();
        emit(Op::kLoadScalar, 0, old, slot);
        const std::uint16_t tmp = alloc();
        emit(Op::kBinary, static_cast<std::uint8_t>(op), tmp, old, result, 0,
             &a);
        result = tmp;
      }
      const std::uint16_t coerced = alloc();
      emit(Op::kCoerce, scalar, coerced, result);
      emit(Op::kStoreScalar, 0, 0, slot, coerced, 0, &a);
      return coerced;
    }
    const auto& sub = static_cast<const lang::SubscriptExpr&>(*a.lhs);
    const Addr addr = subscript_addr(sub);
    if (compound) {
      const std::uint16_t old = alloc();
      emit(Op::kArrLoad, 0, old, addr.site, addr.flat);
      emit(Op::kClassify, 0, 0, addr.site, addr.flat);
      const std::uint16_t tmp = alloc();
      emit(Op::kBinary, static_cast<std::uint8_t>(op), tmp, old, result, 0,
           &a);
      result = tmp;
    }
    const std::uint16_t coerced = alloc();
    emit(Op::kCoerce, scalar, coerced, result);
    // Fused classify + broadcast check (arg bit0) + buffered store.
    emit(Op::kArrPut, 1, 0, addr.site, addr.flat, coerced, &a);
    return coerced;
  }

  std::uint16_t incdec(const lang::IncDecExpr& i) {
    // Walk order: resolve, read (no classification), bump without
    // coercion, classify array targets, buffered store.
    const std::uint8_t arg = i.is_increment ? 1 : 0;
    if (i.operand->kind == ExprKind::kIdent) {
      const auto& id = static_cast<const lang::IdentExpr&>(*i.operand);
      const std::uint16_t slot = scalar_slot(id.symbol);
      const std::uint16_t old = alloc();
      emit(Op::kLoadScalar, 0, old, slot);
      const std::uint16_t next = alloc();
      emit(Op::kIncDec, arg, next, old);
      emit(Op::kStoreScalar, 0, 0, slot, next, 0, &i);
      return i.is_prefix ? next : old;
    }
    const auto& sub = static_cast<const lang::SubscriptExpr&>(*i.operand);
    const Addr addr = subscript_addr(sub);
    const std::uint16_t old = alloc();
    emit(Op::kArrLoad, 0, old, addr.site, addr.flat);
    const std::uint16_t next = alloc();
    emit(Op::kIncDec, arg, next, old);
    // Fused classify + buffered store (no broadcast check: the walk's
    // inc/dec path does not broadcast).
    emit(Op::kArrPut, 0, 0, addr.site, addr.flat, next, &i);
    return i.is_prefix ? next : old;
  }

  std::uint16_t call(const lang::CallExpr& c) {
    switch (static_cast<BuiltinId>(c.symbol->builtin_id)) {
      case BuiltinId::kPower2: {
        const std::uint16_t v = expr(*c.args[0]);
        const std::uint16_t r = alloc();
        emit(Op::kPower2, 0, r, v, 0, 0, &c);
        return r;
      }
      case BuiltinId::kRand: {
        const std::uint16_t r = alloc();
        emit(Op::kRand, 0, r);
        k_.uses_rand = true;
        return r;
      }
      case BuiltinId::kAbs: {
        const std::uint16_t v = expr(*c.args[0]);
        const std::uint16_t r = alloc();
        emit(Op::kAbs, 0, r, v);
        return r;
      }
      case BuiltinId::kMin2:
      case BuiltinId::kMax2: {
        const std::uint16_t x = expr(*c.args[0]);
        const std::uint16_t y = expr(*c.args[1]);
        const std::uint16_t r = alloc();
        const bool is_min =
            static_cast<BuiltinId>(c.symbol->builtin_id) == BuiltinId::kMin2;
        emit(Op::kMinMax, is_min ? 1 : 0, r, x, y);
        return r;
      }
      case BuiltinId::kSrand:
      case BuiltinId::kSwap:
      case BuiltinId::kPrint:
        break;  // unreachable: can_compile rejected them
    }
    const std::uint16_t r = alloc();
    emit(Op::kConst, 0, r, pool_const(Value::of_int(0)));
    return r;
  }

  // Lowers an arm predicate as a chain of test-and-exit branches: every
  // kLogAnd conjunct is evaluated in order and a false conjunct jumps to
  // the (caller-patched) fold-skip point.  Leaves other than && lower
  // normally, so || keeps its materialised short-circuit form.
  void pred_exits(const Expr& e, std::vector<std::size_t>& exits) {
    if (e.kind == ExprKind::kBinary) {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      if (b.op == BinaryOp::kLogAnd) {
        pred_exits(*b.lhs, exits);
        pred_exits(*b.rhs, exits);
        return;
      }
    }
    const std::uint16_t p = expr(e);
    exits.push_back(emit(Op::kJumpIfFalse, 0, 0, p));
  }

  std::uint16_t reduce(const lang::ReduceExpr& red) {
    k_.reduces.push_back(ReduceRef{&red});
    const auto slot = static_cast<std::uint16_t>(k_.reduces.size() - 1);
    const std::uint16_t dst = alloc();

    const auto* saved_reduce = cur_reduce_;
    const auto saved_slot = cur_reduce_slot_;
    cur_reduce_ = &red;
    cur_reduce_slot_ = static_cast<std::int32_t>(slot);

    // kReduceBegin's jump exits straight to kReduceEnd when the tuple
    // product is empty (the walk then returns the identity).
    const std::size_t begin = emit(Op::kReduceBegin, 0, 0, slot);
    const auto loop_start = static_cast<std::int32_t>(k_.code.size());
    for (const auto& arm : red.arms) {
      if (arm.pred) {
        if (optimize_) {
          // Branch-chain lowering: each && conjunct tests-and-exits
          // directly instead of materialising the boolean, so the
          // predicate and the value form one extended basic block and the
          // optimiser's value numbering reaches across them.  Evaluation
          // order and short-circuiting are unchanged.
          std::vector<std::size_t> exits;
          pred_exits(*arm.pred, exits);
          const std::uint16_t v = expr(*arm.value);
          emit(Op::kReduceFold, 0, 0, v);
          for (const std::size_t at : exits) patch(at);
          continue;
        }
        const std::uint16_t p = expr(*arm.pred);
        const std::size_t skip = emit(Op::kJumpIfFalse, 0, 0, p);
        const std::uint16_t v = expr(*arm.value);
        emit(Op::kReduceFold, 0, 0, v);
        patch(skip);
      } else {
        const std::uint16_t v = expr(*arm.value);
        emit(Op::kReduceFold, 0, 0, v);
      }
    }
    if (red.others) {
      const std::size_t skip = emit(Op::kReduceSkipOthers);
      const std::uint16_t v = expr(*red.others);
      emit(Op::kReduceFold, 0, 0, v);
      patch(skip);
    }
    const std::size_t next = emit(Op::kReduceNext);
    k_.code[next].jump = loop_start;
    patch(begin);
    emit(Op::kReduceEnd, 0, dst, slot);

    cur_reduce_ = saved_reduce;
    cur_reduce_slot_ = saved_slot;
    return dst;
  }
};

}  // namespace

bool can_compile_expr(const Expr& e) { return can_compile(e, false); }

std::unique_ptr<Kernel> compile_expr(const Expr& e) {
  if (!can_compile_expr(e)) return nullptr;
  auto kernel = std::make_unique<Kernel>();
  Lowerer(*kernel).lower(e);
  return kernel;
}

std::unique_ptr<Kernel> compile_fused(const Expr* const* stmts,
                                      std::size_t n) {
  if (n == 0) return nullptr;
  for (std::size_t m = 0; m < n; ++m) {
    if (stmts[m] == nullptr || !can_compile_expr(*stmts[m])) return nullptr;
  }
  auto kernel = std::make_unique<Kernel>();
  Lowerer(*kernel, /*optimize=*/true).lower_fused(stmts, n);
  // Registers are never reused, so a pathological fusion could overflow
  // the 16-bit register file; decline and let the members run unfused.
  if (kernel->num_regs > 60000) return nullptr;
  if (!optimize_kernel(*kernel)) return nullptr;
  return kernel;
}

}  // namespace uc::vm::detail::kernel
