// Flat register bytecode for the lane-kernel engine (docs/VM.md).
//
// A Kernel is the compiled form of one synchronous statement expression:
// straight-line code with explicit jumps (short-circuit &&/||, ?:, and the
// reduction tuple loop), a constant pool, and symbolic operand tables that
// are resolved ("linked") against the current lane space once per
// execution.  Instructions reference virtual registers; registers are
// allocated monotonically during lowering and never reused, so every read
// is dominated by a write on all control paths by construction.
//
// The compiler (compile.cpp) mirrors the tree-walk evaluator's semantics
// exactly — evaluation order, coercions, access classification points,
// error messages — so the two engines are observationally identical; the
// differential suite tests/ucvm/engine_parity_test.cpp enforces this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "uclang/ast.hpp"
#include "ucvm/value.hpp"

namespace uc::vm::detail::kernel {

// At most this many index sets per reduction (the lane geometry is capped
// at 8 dims by the classifier anyway); deeper reductions fall back to the
// tree walk.
inline constexpr std::size_t kMaxReduceSets = 4;
// At most this many subscripts per array access (matches the walk's
// 8-coordinate flatten buffers).
inline constexpr std::size_t kMaxSubscripts = 8;

enum class Op : std::uint8_t {
  kConst,           // r[dst] = pool[a]
  kMove,            // r[dst] = r[a]
  kBool,            // r[dst] = of_bool(r[a].truthy())
  kLoadElem,        // r[dst] = elems[a] (index element, outer spaces)
  kLoadReduceElem,  // r[dst] = current reduce tuple's element for set b
  kLoadScalar,      // r[dst] = scalars[a] (global / frame / lane-local)
  kStoreScalar,     // buffer write of r[b] to scalars[a]
  kArrIndex,        // r[dst] = flatten(arrays[a], regs r[b..b+c)); bounds-chk
  kArrLoad,         // r[dst] = arrays[a].load(r[b])
  kArrGet,          // fused kArrIndex + kClassify + kArrLoad (rvalue reads)
  kClassify,        // classify access to arrays[a] element r[b]
  kBroadcastCheck,  // arrays[a] replicated => ++stats.broadcast
  kArrStore,        // buffer write of r[c] to arrays[a] element r[b]
  kArrPut,          // fused kClassify (+ kBroadcastCheck, arg bit0) + kArrStore
  kUnary,           // r[dst] = unary<arg>(r[a])
  kBinary,          // r[dst] = binary<arg>(r[a], r[b]); div/mod errors
  kIncDec,          // r[dst] = r[a] +/- 1 (arg bit0: increment)
  kCoerce,          // r[dst] = r[a].coerce(ScalarKind(arg))
  kJump,            // ip = jump
  kJumpIfFalse,     // if (!r[a].truthy()) ip = jump
  kJumpIfTrue,      // if (r[a].truthy()) ip = jump
  kAbs,             // r[dst] = abs(r[a])
  kMinMax,          // r[dst] = min/max(r[a], r[b]) (arg bit0: min)
  kPower2,          // r[dst] = 1 << r[a]; range-checked
  kRand,            // r[dst] = lane rng next() >> 33
  kReduceBegin,     // start reduces[a]; empty product jumps straight out
  kReduceFold,      // fold r[a] into the live reduction's accumulator
  kReduceSkipOthers,  // if (enabled_any) ip = jump (skip the others arm)
  kReduceNext,      // advance the tuple odometer; more tuples => ip = jump
  kReduceEnd,       // r[dst] = final accumulator (float-coerced)
  kMemberBoundary,  // fused kernels: entering member a (stats slot + RNG)
  kRet,             // kernel result = r[a]
};

struct Inst {
  Op op = Op::kRet;
  std::uint8_t arg = 0;  // BinaryOp / UnaryOp / ScalarKind / flag, per op
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::int32_t jump = -1;
  const lang::Expr* where = nullptr;  // error location, same as the walk's
};

// ---------------------------------------------------------------------------
// Symbolic operand tables (compile-time; resolved per execution by link())
// ---------------------------------------------------------------------------

struct ElemRef {
  const lang::Symbol* sym = nullptr;  // the index-element symbol
};

struct ScalarRef {
  const lang::Symbol* sym = nullptr;  // global / local / param scalar
};

struct ArrayRef {
  const lang::Symbol* sym = nullptr;  // the array variable
  // >= 0 when this access site sits inside a reduction's arms: it then
  // classifies against the reduction's expanded geometry and honours the
  // partition-optimisation comm suppression.
  std::int32_t reduce = -1;
};

struct ReduceRef {
  const lang::ReduceExpr* expr = nullptr;
};

struct Kernel {
  std::vector<Inst> code;
  std::vector<Value> pool;
  std::vector<ElemRef> elems;
  std::vector<ScalarRef> scalars;
  std::vector<ArrayRef> arrays;
  std::vector<ReduceRef> reduces;
  std::uint32_t num_regs = 0;
  // Fused kernels cover several consecutive statements of one par body;
  // kMemberBoundary instructions mark the entry to members 1..n-1 (member 0
  // starts at code[0]).  Plain statement kernels have num_members == 1.
  std::uint32_t num_members = 1;
  bool uses_rand = false;  // seed the per-lane RNG only when needed
};

// True when the lowering covers this expression tree; false means the
// statement runs on the tree-walk engine (solve bodies, user function
// calls, side-effecting builtins, nested reductions, ...).
bool can_compile_expr(const lang::Expr& e);

// Lowers a statement expression; returns nullptr when can_compile_expr is
// false.  Pure function of the sema'd AST — safe to cache per Expr*.
std::unique_ptr<Kernel> compile_expr(const lang::Expr& e);

// Lowers `n` consecutive statement expressions into one fused kernel
// (docs/VM.md "Fusion") and runs the optimisation pipeline over it:
// value-numbering CSE, cross-member store-to-load forwarding, and dead
// temporary elimination.  Every member must satisfy can_compile_expr, and
// the caller must have proven the members fusion-safe at the AST level
// (interp_constructs.cpp); the bytecode-level forwarding check is the
// final authority and returns nullptr when a later member reads an element
// a prior member wrote through a subscript the optimiser cannot match.
// With n == 1 this is compile_expr + optimisation and never fails.
std::unique_ptr<Kernel> compile_fused(const lang::Expr* const* stmts,
                                      std::size_t n);

// The optimisation pipeline (optimize.cpp).  Returns false when
// cross-member store-to-load forwarding finds an unmatchable read (the
// kernel is then left in an unspecified state and must be discarded).
bool optimize_kernel(Kernel& k);

}  // namespace uc::vm::detail::kernel
