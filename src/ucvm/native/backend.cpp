// Native-tier backend: emit -> hash -> on-disk .so cache -> out-of-process
// compile -> dlopen (docs/VM.md "Native tier").
//
// The cache key is the hash of the emitted source text combined with the
// compiler command line and the ABI version, so a change to any of the
// three produces a different file name; stale entries are additionally
// caught by validating the uc_native_info symbol after dlopen.  Compiles
// write to a temp path and rename into place, so concurrent processes
// sharing a cache directory race benignly (last rename wins, both files
// are identical).
#include "ucvm/native/native.hpp"

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/hash.hpp"

namespace uc::vm::detail::native {

namespace fs = std::filesystem;

namespace {

std::string default_cache_dir() {
  if (const char* env = std::getenv("UC_NATIVE_CACHE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = "/tmp";
  return (base / ("uc-native-cache-" + std::to_string(::getuid()))).string();
}

std::string default_cc() {
  if (const char* env = std::getenv("UC_NATIVE_CC");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "c++";
}

std::string shell_quote(const std::string& s) {
  std::string q = "'";
  for (char c : s) {
    if (c == '\'') {
      q += "'\\''";
    } else {
      q += c;
    }
  }
  q += "'";
  return q;
}

}  // namespace

Backend::Backend(BackendOptions opts)
    : cache_dir_(opts.cache_dir.empty() ? default_cache_dir()
                                        : opts.cache_dir),
      cc_(opts.cc.empty() ? default_cc() : opts.cc),
      log_(std::move(opts.log)) {
  // -ffp-contract=off matters: the default (fast) lets the compiler fuse
  // a*b+c into fma, which changes float results by one rounding step and
  // would break bit-identity with the bytecode tier.
  extra_flags_ =
      "-std=c++17 -O3 -fPIC -shared -fvisibility=hidden -ffp-contract=off";
  std::error_code ec;
  fs::create_directories(cache_dir_, ec);
  cache_dir_ok_ = !ec && fs::is_directory(cache_dir_, ec);
  if (!cache_dir_ok_) {
    note("native: cache directory '" + cache_dir_ +
         "' is unusable; native tier disabled");
    toolchain_ok_ = false;
  }
}

Backend::~Backend() {
  cache_.clear();
  for (void* h : handles_) {
    if (h != nullptr) ::dlclose(h);
  }
}

void Backend::note(const std::string& msg) const {
  if (log_) {
    log_(msg);
  } else {
    std::fprintf(stderr, "ucvm: %s\n", msg.c_str());
  }
}

const Prepared* Backend::prepare(const kernel::Kernel& k) {
  auto it = cache_.find(&k);
  if (it != cache_.end()) return it->second.get();
  auto& slot = cache_[&k];  // default nullptr = negative entry
  if (!toolchain_ok_) return nullptr;

  auto prep = std::make_unique<Prepared>();
  std::string source = emit_source(k, *prep);
  if (source.empty()) {
    ++emit_declined_;
    return nullptr;
  }
  // Key: source text x compiler command line x ABI version.
  std::uint64_t hash = support::fnv1a(source);
  hash = support::fnv1a(cc_, hash);
  hash = support::fnv1a(extra_flags_, hash);
  hash = support::fnv1a_u64(kAbiVersion, hash);
  // The emitted code needs its own hash for uc_native_info; feed it in as
  // a macro so the text itself stays hash-stable.
  Loaded loaded = load_or_compile(source, hash);
  if (loaded.entry == nullptr) return nullptr;
  prep->entry = loaded.entry;
  prep->source_hash = hash;
  prep->cache_hit = loaded.cache_hit;
  if (loaded.cache_hit) {
    ++cache_hits_;
  } else {
    ++kernels_compiled_;
  }
  slot = std::move(prep);
  return cache_[&k].get();
}

Backend::Loaded Backend::load_or_compile(const std::string& source,
                                         std::uint64_t hash) {
  char name[32];
  std::snprintf(name, sizeof name, "uc_%016llx",
                static_cast<unsigned long long>(hash));
  const std::string so_path = cache_dir_ + "/" + name + ".so";

  auto try_load = [&](bool expect_valid) -> Loaded {
    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) return {};
    const auto* info =
        static_cast<const NativeInfo*>(::dlsym(handle, "uc_native_info"));
    void* entry_sym = ::dlsym(handle, "uc_native_entry");
    if (info == nullptr || entry_sym == nullptr ||
        info->abi_version != kAbiVersion ||
        info->sizeof_args != sizeof(NativeArgs) || info->source_hash != hash) {
      if (expect_valid) {
        note("native: cached object '" + so_path +
             "' is stale or corrupt; recompiling");
      }
      ::dlclose(handle);
      return {};
    }
    Loaded l;
    l.handle = handle;
    l.entry = reinterpret_cast<Prepared::EntryFn>(entry_sym);
    return l;
  };

  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    Loaded l = try_load(/*expect_valid=*/true);
    if (l.entry != nullptr) {
      l.cache_hit = true;
      handles_.push_back(l.handle);
      return l;
    }
    fs::remove(so_path, ec);  // corrupt/stale: rebuild below
  }

  const std::string src_path =
      cache_dir_ + "/" + name + "." + std::to_string(::getpid()) + ".cpp";
  {
    std::ofstream out(src_path, std::ios::binary | std::ios::trunc);
    out << source;
    if (!out) {
      note("native: cannot write '" + src_path + "'; native tier disabled");
      toolchain_ok_ = false;
      return {};
    }
  }
  const bool ok = compile_to(src_path, so_path, hash);
  fs::remove(src_path, ec);
  if (!ok) return {};
  Loaded l = try_load(/*expect_valid=*/false);
  if (l.entry == nullptr) {
    note("native: freshly compiled object '" + so_path +
         "' failed to load; native tier disabled");
    toolchain_ok_ = false;
    return {};
  }
  handles_.push_back(l.handle);
  return l;
}

bool Backend::compile_to(const std::string& src_path,
                         const std::string& so_path, std::uint64_t hash) {
  const std::string tmp_path =
      so_path + "." + std::to_string(::getpid()) + ".tmp";
  char hash_def[64];
  std::snprintf(hash_def, sizeof hash_def, "-DUC_SOURCE_HASH=0x%016llxull",
                static_cast<unsigned long long>(hash));

  auto run = [&](bool march_native) {
    std::ostringstream cmd;
    cmd << cc_ << ' ' << extra_flags_;
    if (march_native) cmd << " -march=native";
    cmd << ' ' << hash_def << ' ' << shell_quote(src_path) << " -o "
        << shell_quote(tmp_path) << " 2>/dev/null";
    return std::system(cmd.str().c_str()) == 0;
  };
  // -march=native unlocks the wide vector units; some toolchains reject it
  // (cross compilers, old assemblers), so retry portably before declaring
  // the toolchain broken.
  bool ok = run(/*march_native=*/true);
  if (!ok) ok = run(/*march_native=*/false);
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    toolchain_ok_ = false;
    if (!warned_toolchain_) {
      warned_toolchain_ = true;
      note("native: host toolchain '" + cc_ +
           "' cannot build lane kernels; falling back to the bytecode "
           "engine (set --native-cc or $UC_NATIVE_CC)");
    }
    return false;
  }
  std::error_code ec;
  fs::rename(tmp_path, so_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    note("native: cannot move compiled object into '" + so_path + "'");
    return false;
  }
  return true;
}

}  // namespace uc::vm::detail::native
