// Kernel -> C++ lowering for the native tier (docs/VM.md "Native tier").
//
// The bytecode Kernel is the IR: every instruction is emitted as the
// statically-typed C++ equivalent of the executor's switch arm in
// kernel/exec.cpp, so the two tiers cannot drift apart semantically.  The
// executor's dynamically-typed Values become int64/double locals using
// the registers' inferred static types; anything whose type cannot be
// pinned down (a register assigned both representations, a float-typed
// arm folding into an int reduction) makes the emitter decline the kernel
// and the statement runs on the bytecode tier instead.
//
// Emitted loops index lanes contiguously over the chunk, keep `st`
// guards as branches the host compiler converts to selects where
// profitable, and never bake process-local pointers into the text: all
// link-dependent state arrives through NativeArgs, which is what lets
// the compiled .so be cached on disk across processes.
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ucvm/interp_detail.hpp"
#include "ucvm/native/native.hpp"

namespace uc::vm::detail::native {

namespace {

using kernel::Inst;
using kernel::Kernel;
using kernel::Op;
using lang::BinaryOp;
using lang::ReduceKind;
using lang::ScalarKind;
using lang::UnaryOp;

// Emission limits: beyond these the host compiler's time outweighs the
// dispatch win and the bytecode tier is the better choice.
constexpr std::size_t kMaxInsts = 4096;
constexpr std::size_t kMaxRegs = 2048;

enum RegType : int { kUnset = -1, kInt = 0, kFloat = 1 };

struct ReduceMeta {
  std::size_t n_sets = 0;
  bool flt = false;
  ReduceKind op = ReduceKind::kAdd;
  RegType acc = kInt;
};

void appendf(std::string& s, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

std::uint64_t dbl_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

class Emitter {
 public:
  Emitter(const Kernel& k, Prepared& out) : k_(k), out_(out) {}

  std::string run() {
    if (k_.code.size() > kMaxInsts || k_.num_regs > kMaxRegs) return {};
    if (!analyze()) return {};
    emit_prelude();
    emit_entry();
    return ok_ ? std::move(src_) : std::string{};
  }

 private:
  // --- static analysis: register types, reduce accumulators, limits ---

  bool analyze() {
    rt_.assign(k_.num_regs, kUnset);
    rmeta_.resize(k_.reduces.size());
    for (std::size_t i = 0; i < k_.reduces.size(); ++i) {
      const auto* e = k_.reduces[i].expr;
      ReduceMeta& m = rmeta_[i];
      m.n_sets = e->index_set_syms.size();
      m.flt = e->type.is_float();
      m.op = e->op;
      // Accumulator representation (matches fold_reduce_value's dynamics
      // given the arm-type restrictions checked at each kReduceFold):
      // and/or/xor always fold to ints; everything else follows flt.
      const bool int_ops = m.op == ReduceKind::kAnd ||
                           m.op == ReduceKind::kOr || m.op == ReduceKind::kXor;
      m.acc = (!int_ops && m.flt) ? kFloat : kInt;
      if (m.n_sets > kernel::kMaxReduceSets) return false;
    }
    for (std::size_t i = 0; i < k_.arrays.size(); ++i) {
      out_.array_flt.push_back(k_.arrays[i].sym->type.is_float() ? 1 : 0);
    }
    for (std::size_t i = 0; i < k_.scalars.size(); ++i) {
      out_.scalar_flt.push_back(k_.scalars[i].sym->type.is_float() ? 1 : 0);
    }

    int cur_reduce = -1;
    for (const Inst& I : k_.code) {
      switch (I.op) {
        case Op::kConst:
          if (!def(I.dst, k_.pool[I.a].is_float ? kFloat : kInt)) return false;
          break;
        case Op::kMove: {
          const RegType t = use(I.a);
          if (t == kUnset || !def(I.dst, t)) return false;
          break;
        }
        case Op::kBool:
          if (use(I.a) == kUnset || !def(I.dst, kInt)) return false;
          break;
        case Op::kLoadElem:
        case Op::kLoadReduceElem:
          if (!def(I.dst, kInt)) return false;
          break;
        case Op::kLoadScalar:
          if (!def(I.dst, out_.scalar_flt[I.a] ? kFloat : kInt)) return false;
          break;
        case Op::kStoreScalar:
          if (use(I.b) == kUnset) return false;
          if (cur_reduce >= 0) return false;  // stores inside a reduce loop
          ++out_.max_writes_per_lane;
          break;
        case Op::kArrIndex:
          for (std::uint16_t j = 0; j < I.c; ++j) {
            if (use(I.b + j) == kUnset) return false;
          }
          if (!def(I.dst, kInt)) return false;
          break;
        case Op::kArrLoad:
          if (use(I.b) != kInt) return false;  // flat index is always int
          if (!def(I.dst, out_.array_flt[I.a] ? kFloat : kInt)) return false;
          break;
        case Op::kArrGet:
          for (std::uint16_t j = 0; j < I.c; ++j) {
            if (use(I.b + j) == kUnset) return false;
          }
          if (!def(I.dst, out_.array_flt[I.a] ? kFloat : kInt)) return false;
          break;
        case Op::kClassify:
          if (use(I.b) != kInt) return false;
          break;
        case Op::kBroadcastCheck:
          break;
        case Op::kArrStore:
        case Op::kArrPut:
          if (use(I.b) != kInt || use(I.c) == kUnset) return false;
          if (cur_reduce >= 0) return false;
          ++out_.max_writes_per_lane;
          break;
        case Op::kUnary: {
          const RegType t = use(I.a);
          if (t == kUnset) return false;
          const auto u = static_cast<UnaryOp>(I.arg);
          const RegType d = (u == UnaryOp::kNot || u == UnaryOp::kBitNot)
                                ? kInt
                                : t;
          if (!def(I.dst, d)) return false;
          break;
        }
        case Op::kBinary: {
          const RegType ta = use(I.a), tb = use(I.b);
          if (ta == kUnset || tb == kUnset) return false;
          if (!def(I.dst, binary_type(static_cast<BinaryOp>(I.arg), ta, tb))) {
            return false;
          }
          break;
        }
        case Op::kIncDec: {
          const RegType t = use(I.a);
          if (t == kUnset || !def(I.dst, t)) return false;
          break;
        }
        case Op::kCoerce: {
          if (use(I.a) == kUnset) return false;
          const bool to_f = static_cast<ScalarKind>(I.arg) ==
                            ScalarKind::kFloat;
          if (!def(I.dst, to_f ? kFloat : kInt)) return false;
          break;
        }
        case Op::kJump:
          break;
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
          if (use(I.a) == kUnset) return false;
          break;
        case Op::kAbs: {
          const RegType t = use(I.a);
          if (t == kUnset || !def(I.dst, t)) return false;
          break;
        }
        case Op::kMinMax: {
          const RegType ta = use(I.a), tb = use(I.b);
          if (ta == kUnset || tb == kUnset) return false;
          if (!def(I.dst, ta == kFloat || tb == kFloat ? kFloat : kInt)) {
            return false;
          }
          break;
        }
        case Op::kPower2:
          if (use(I.a) == kUnset || !def(I.dst, kInt)) return false;
          break;
        case Op::kRand:
          if (!def(I.dst, kInt)) return false;
          break;
        case Op::kReduceBegin:
          if (cur_reduce >= 0) return false;  // no nesting
          cur_reduce = static_cast<int>(I.a);
          break;
        case Op::kReduceFold: {
          if (cur_reduce < 0) return false;
          const RegType tv = use(I.a);
          if (tv == kUnset) return false;
          const ReduceMeta& m = rmeta_[static_cast<std::size_t>(cur_reduce)];
          // A float arm folding into an int accumulator would retype it
          // dynamically (fold_reduce_value promotes); decline those.
          const bool truthy_fold =
              m.op == ReduceKind::kAnd || m.op == ReduceKind::kOr;
          const bool int_fold = m.op == ReduceKind::kXor;
          if (!truthy_fold && !int_fold && m.acc == kInt && tv == kFloat) {
            return false;
          }
          break;
        }
        case Op::kReduceSkipOthers:
        case Op::kReduceNext:
          if (cur_reduce < 0) return false;
          break;
        case Op::kReduceEnd: {
          if (cur_reduce < 0) return false;
          const ReduceMeta& m = rmeta_[static_cast<std::size_t>(cur_reduce)];
          if (!def(I.dst, m.flt ? kFloat : m.acc)) return false;
          cur_reduce = -1;
          break;
        }
        case Op::kMemberBoundary:
          if (cur_reduce >= 0) return false;
          break;
        case Op::kRet:
          if (use(I.a) == kUnset) return false;
          break;
      }
    }
    // Map each instruction to its live reduce (for classify call sites and
    // fold emission), and collect jump-target labels.
    inst_reduce_.assign(k_.code.size(), -1);
    labels_.assign(k_.code.size(), false);
    cur_reduce = -1;
    for (std::size_t ip = 0; ip < k_.code.size(); ++ip) {
      const Inst& I = k_.code[ip];
      if (I.op == Op::kReduceBegin) cur_reduce = static_cast<int>(I.a);
      inst_reduce_[ip] = cur_reduce;
      if (I.op == Op::kReduceEnd) cur_reduce = -1;
      if (I.jump >= 0) labels_[static_cast<std::size_t>(I.jump)] = true;
    }
    return true;
  }

  static RegType binary_type(BinaryOp op, RegType a, RegType b) {
    const bool flt = a == kFloat || b == kFloat;
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        return flt ? kFloat : kInt;
      default:
        return kInt;  // mod, comparisons, bit ops, shifts
    }
  }

  bool def(std::uint16_t r, RegType t) {
    if (rt_[r] == kUnset) {
      rt_[r] = t;
      return true;
    }
    return rt_[r] == t;  // e.g. a ternary whose arms disagree: decline
  }
  RegType use(std::uint16_t r) const {
    return static_cast<RegType>(rt_[r]);
  }

  // --- text helpers ---

  std::string R(std::uint16_t r) const { return "r" + std::to_string(r); }
  // Register as double (as_float) / as int64 (as_int).
  std::string F(std::uint16_t r) const {
    return rt_[r] == kFloat ? R(r) : "(double)" + R(r);
  }
  std::string I64(std::uint16_t r) const {
    return rt_[r] == kInt ? R(r) : "(i64)" + R(r);
  }
  std::string truthy(std::uint16_t r) const {
    return R(r) + (rt_[r] == kFloat ? " != 0.0" : " != 0");
  }
  std::size_t where_index(const lang::Expr* w) {
    out_.wheres.push_back(w);
    return out_.wheres.size() - 1;
  }
  void classify_call(std::uint16_t site, const std::string& flat) {
    const std::int32_t red = k_.arrays[site].reduce;
    if (red >= 0) {
      appendf(src_,
              "      uc_classify(A, a_, 1, %s, rs_vp, rs_coords, "
              "rs_suppress, st);\n",
              flat.c_str());
    } else {
      appendf(src_,
              "      uc_classify(A, a_, 0, %s, lane_vp, lane_coords, "
              "false, st);\n",
              flat.c_str());
    }
  }
  void emit_value_store(const char* dst, std::uint16_t reg) {
    if (rt_[reg] == kFloat) {
      appendf(src_, "      %s.flt = true; %s.i = 0; %s.f = %s;\n", dst, dst,
              dst, R(reg).c_str());
    } else {
      appendf(src_, "      %s.flt = false; %s.i = %s; %s.f = 0.0;\n", dst,
              dst, R(reg).c_str(), dst);
    }
  }
  void emit_bounds(std::uint16_t site, std::uint16_t base, std::uint16_t n) {
    appendf(src_, "      i64 flat = (%u == a_.rank) ? 0 : (i64)-1;\n",
            static_cast<unsigned>(n));
    for (std::uint16_t j = 0; j < n; ++j) {
      appendf(src_,
              "      if (flat >= 0) { const i64 ix = %s;\n"
              "        if (ix < 0 || ix >= a_.adims[%u]) flat = -1;\n"
              "        else flat += ix * a_.astrides[%u]; }\n",
              I64(base + j).c_str(), j, j);
    }
    src_ += "      if (flat < 0) goto uc_error;\n";
    (void)site;
  }

  // --- prelude: mirrored host structs + helpers ---

  void emit_prelude() {
    src_ +=
        "// Generated lane kernel (uc native tier).  Do not edit: the\n"
        "// file name is a content hash and the VM regenerates it.\n"
        "typedef long long i64;\n"
        "typedef unsigned long long u64;\n"
        "static_assert(sizeof(i64) == 8 && sizeof(double) == 8 && "
        "sizeof(void*) == 8, \"uc native: unsupported host ABI\");\n"
        "struct NVal { bool flt; i64 i; double f; };\n"
        "struct NTarget { unsigned char kind; void* obj; i64 index; i64 lane;"
        " };\n"
        "struct NWrite { NTarget target; NVal value; const void* where; };\n"
        "struct NStats { u64 local, news, news_max_hops, router, frontend,"
        " broadcast; };\n";
    // Layout proofs against the host process that emitted this file.
    appendf(src_,
            "static_assert(sizeof(NVal) == %zu && "
            "__builtin_offsetof(NVal, i) == %zu && "
            "__builtin_offsetof(NVal, f) == %zu, \"Value layout\");\n",
            sizeof(Value), offsetof(Value, i), offsetof(Value, f));
    appendf(src_,
            "static_assert(sizeof(NWrite) == %zu && "
            "__builtin_offsetof(NWrite, value) == %zu && "
            "__builtin_offsetof(NWrite, where) == %zu, \"Write layout\");\n",
            sizeof(Write), offsetof(Write, value), offsetof(Write, where));
    appendf(src_,
            "static_assert(__builtin_offsetof(NTarget, obj) == %zu && "
            "__builtin_offsetof(NTarget, index) == %zu && "
            "__builtin_offsetof(NTarget, lane) == %zu, \"target layout\");\n",
            offsetof(WriteTarget, obj), offsetof(WriteTarget, index),
            offsetof(WriteTarget, lane));
    appendf(src_, "static_assert(sizeof(NStats) == %zu, \"stats layout\");\n",
            sizeof(AccessStats));
    src_ +=
        "struct NElem { const i64* vals; i64 k; i64 width; int depth; };\n"
        "struct NScalar { i64 i; double f; const void* store; void* owner;\n"
        "  i64 slot; int depth; unsigned char home; };\n"
        "struct NArray { const u64* data; const i64* owners;\n"
        "  const i64* vp_coords; const i64* adims; const i64* astrides;\n"
        "  void* obj; i64 rank; unsigned char mode; unsigned char "
        "geom_matches;\n"
        "  unsigned char slice; unsigned char replicated; };\n"
        "struct NReduce { const i64* values[4]; i64 sizes[4]; i64 prod;\n"
        "  i64 base_dims; unsigned char suppress; };\n"
        "struct NArgs {\n"
        "  i64 k_begin, k_end; const i64* active;\n"
        "  const i64* vps; const i64* coords; i64 n_dims;\n"
        "  const i64* const* parent_lanes; int max_depth;\n"
        "  const NElem* elems; const NScalar* scalars;\n"
        "  const NArray* arrays; const NReduce* reduces;\n"
        "  void* results; void* writes; i64 writes_count; void* stats;\n"
        "  const void* const* wheres; void* frame;\n"
        "  u64 stmt_id, base_seed, news_op, router_op;\n"
        "  i64 error;\n"
        "};\n";
    appendf(src_,
            "static_assert(sizeof(NElem) == %zu && sizeof(NScalar) == %zu && "
            "sizeof(NArray) == %zu && sizeof(NReduce) == %zu && "
            "sizeof(NArgs) == %zu, \"NativeArgs layout\");\n",
            sizeof(NElem), sizeof(NScalar), sizeof(NArray), sizeof(NReduce),
            sizeof(NativeArgs));
    src_ +=
        "static inline double uc_bits_f(u64 b) "
        "{ double d; __builtin_memcpy(&d, &b, 8); return d; }\n"
        "static inline i64 uc_bits_i(u64 b) "
        "{ i64 v; __builtin_memcpy(&v, &b, 8); return v; }\n"
        "static inline u64 uc_sm64(u64& s) {\n"
        "  u64 z = (s += 0x9e3779b97f4a7c15ull);\n"
        "  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;\n"
        "  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;\n"
        "  return z ^ (z >> 31);\n"
        "}\n"
        // Mirror of kernel::Engine::classify_site, decision for decision.
        "static inline void uc_classify(const NArgs* A, const NArray& a,\n"
        "    int in_reduce, i64 flat, i64 vp, const i64* coords,\n"
        "    bool suppress, NStats* st) {\n"
        "  if (in_reduce && suppress) return;\n"
        "  if (a.mode == 0) { ++st->frontend; return; }\n"
        "  if (a.mode == 1) { ++st->local; return; }\n"
        "  const i64 owner = a.owners[flat];\n"
        "  if (owner == vp) { ++st->local; return; }\n"
        "  if (a.slice) { ++st->router; return; }\n"
        "  if (a.geom_matches) {\n"
        "    const i64* oc = a.vp_coords + (u64)owner * (u64)a.rank;\n"
        "    int diff = 0; i64 hops = 0;\n"
        "    for (i64 d = 0; d < a.rank; ++d) {\n"
        "      if (oc[d] != coords[d]) { ++diff;\n"
        "        hops = oc[d] < coords[d] ? coords[d] - oc[d] : oc[d] - "
        "coords[d]; }\n"
        "    }\n"
        "    if (diff == 1 && (u64)hops * A->news_op <= A->router_op) {\n"
        "      ++st->news;\n"
        "      if ((u64)hops > st->news_max_hops) st->news_max_hops = "
        "(u64)hops;\n"
        "      return;\n"
        "    }\n"
        "  }\n"
        "  ++st->router;\n"
        "}\n";
  }

  // --- the entry function ---

  void emit_entry() {
    src_ +=
        "#define UC_EXPORT __attribute__((visibility(\"default\")))\n"
        "extern \"C\" UC_EXPORT void uc_native_entry(NArgs* A) {\n"
        "  NVal* results = (NVal*)A->results;\n"
        "  NWrite* WQ = (NWrite*)A->writes;\n"
        "  NStats* stats0 = (NStats*)A->stats;\n"
        "  i64 wn = 0;\n"
        "  for (i64 kk = A->k_begin; kk < A->k_end; ++kk) {\n"
        "    const i64 lane = A->active[kk];\n"
        "    i64 L[32]; L[0] = lane;\n"
        "    for (int d = 1; d <= A->max_depth; ++d)\n"
        "      L[d] = A->parent_lanes[d - 1][L[d - 1]];\n"
        "    const i64 lane_vp = A->vps[lane];\n"
        "    const i64* lane_coords =\n"
        "        A->n_dims ? A->coords + (u64)lane * (u64)A->n_dims : "
        "(const i64*)0;\n"
        "    NStats* st = stats0;\n";
    if (k_.uses_rand) {
      src_ +=
          "    u64 rng = A->base_seed ^ (A->stmt_id * "
          "0x9e3779b97f4a7c15ull) ^ ((u64)lane_vp + "
          "0x5851f42d4c957f2dull);\n";
    }
    if (!k_.reduces.empty()) {
      src_ +=
          "    u64 rs_pos[4] = {}; i64 rs_elem[4] = {}; i64 rs_coords[8] = "
          "{};\n"
          "    i64 rs_vp = 0, rs_parent_vp = 0, rs_tuple = 0;\n"
          "    bool rs_any = false, rs_enabled_any = false, rs_suppress = "
          "false;\n";
      for (std::size_t i = 0; i < rmeta_.size(); ++i) {
        appendf(src_, "    %s acc%zu = 0;\n",
                rmeta_[i].acc == kFloat ? "double" : "i64", i);
      }
    }
    for (std::uint32_t r = 0; r < k_.num_regs; ++r) {
      if (rt_[r] == kUnset) continue;
      appendf(src_, "    %s r%u = 0;\n", rt_[r] == kFloat ? "double" : "i64",
              r);
    }
    for (std::size_t ip = 0; ip < k_.code.size(); ++ip) emit_inst(ip);
    src_ +=
        "  uc_lane_done:;\n"
        "  }\n"
        "  A->writes_count = wn;\n"
        "  return;\n"
        "uc_error:\n"
        "  A->error = 1;\n"
        "}\n";
    appendf(src_,
            "extern \"C\" { struct NInfo { unsigned abi_version; "
            "unsigned sizeof_args; u64 source_hash; };\n"
            "UC_EXPORT extern const NInfo uc_native_info = {%uu, %zuu, "
            "UC_SOURCE_HASH}; }\n",
            kAbiVersion, sizeof(NativeArgs));
  }

  void emit_inst(std::size_t ip) {
    const Inst& I = k_.code[ip];
    if (labels_[ip]) appendf(src_, "  L%zu:;\n", ip);
    src_ += "    {\n";
    switch (I.op) {
      case Op::kConst: {
        const Value& v = k_.pool[I.a];
        if (v.is_float) {
          appendf(src_, "      %s = uc_bits_f(0x%llxull);\n",
                  R(I.dst).c_str(),
                  static_cast<unsigned long long>(dbl_bits(v.f)));
        } else {
          appendf(src_, "      %s = (i64)0x%llxull;\n", R(I.dst).c_str(),
                  static_cast<unsigned long long>(v.i));
        }
        break;
      }
      case Op::kMove:
        appendf(src_, "      %s = %s;\n", R(I.dst).c_str(), R(I.a).c_str());
        break;
      case Op::kBool:
        appendf(src_, "      %s = (%s) ? 1 : 0;\n", R(I.dst).c_str(),
                truthy(I.a).c_str());
        break;
      case Op::kLoadElem:
        appendf(src_,
                "      const NElem& le = A->elems[%u];\n"
                "      %s = le.vals[(u64)L[le.depth] * (u64)le.width + "
                "(u64)le.k];\n",
                I.a, R(I.dst).c_str());
        break;
      case Op::kLoadReduceElem:
        appendf(src_, "      %s = rs_elem[%u];\n", R(I.dst).c_str(), I.b);
        break;
      case Op::kLoadScalar:
        appendf(src_, "      const NScalar& ls = A->scalars[%u];\n", I.a);
        if (rt_[I.dst] == kFloat) {
          appendf(src_,
                  "      %s = ls.home == 2 ? ((const NVal*)ls.store)"
                  "[L[ls.depth]].f : ls.f;\n",
                  R(I.dst).c_str());
        } else {
          appendf(src_,
                  "      %s = ls.home == 2 ? ((const NVal*)ls.store)"
                  "[L[ls.depth]].i : ls.i;\n",
                  R(I.dst).c_str());
        }
        break;
      case Op::kStoreScalar: {
        const std::size_t widx = where_index(I.where);
        appendf(src_,
                "      const NScalar& ls = A->scalars[%u];\n"
                "      NWrite& w = WQ[wn++];\n"
                "      w.target.kind = (unsigned char)(ls.home + 1);\n"
                "      w.target.obj = ls.home == 0 ? (void*)0\n"
                "          : (ls.home == 1 ? A->frame : ls.owner);\n"
                "      w.target.index = ls.slot;\n"
                "      w.target.lane = ls.home == 2 ? L[ls.depth] : 0;\n",
                I.a);
        emit_value_store("w.value", I.b);
        appendf(src_, "      w.where = A->wheres[%zu];\n", widx);
        break;
      }
      case Op::kArrIndex:
        appendf(src_, "      const NArray& a_ = A->arrays[%u];\n", I.a);
        emit_bounds(I.a, I.b, I.c);
        appendf(src_, "      %s = flat;\n", R(I.dst).c_str());
        break;
      case Op::kArrLoad:
        appendf(src_, "      const NArray& a_ = A->arrays[%u];\n", I.a);
        appendf(src_, "      %s = %s(a_.data[%s]);\n", R(I.dst).c_str(),
                rt_[I.dst] == kFloat ? "uc_bits_f" : "uc_bits_i",
                R(I.b).c_str());
        break;
      case Op::kArrGet:
        appendf(src_, "      const NArray& a_ = A->arrays[%u];\n", I.a);
        emit_bounds(I.a, I.b, I.c);
        classify_call(I.a, "flat");
        appendf(src_, "      %s = %s(a_.data[flat]);\n", R(I.dst).c_str(),
                rt_[I.dst] == kFloat ? "uc_bits_f" : "uc_bits_i");
        break;
      case Op::kClassify:
        appendf(src_, "      const NArray& a_ = A->arrays[%u];\n", I.a);
        classify_call(I.a, R(I.b));
        break;
      case Op::kBroadcastCheck:
        appendf(src_,
                "      if (A->arrays[%u].replicated) ++st->broadcast;\n",
                I.a);
        break;
      case Op::kArrStore: {
        const std::size_t widx = where_index(I.where);
        appendf(src_,
                "      const NArray& a_ = A->arrays[%u];\n"
                "      NWrite& w = WQ[wn++];\n"
                "      w.target.kind = 0; w.target.obj = a_.obj;\n"
                "      w.target.index = %s; w.target.lane = 0;\n",
                I.a, R(I.b).c_str());
        emit_value_store("w.value", I.c);
        appendf(src_, "      w.where = A->wheres[%zu];\n", widx);
        break;
      }
      case Op::kArrPut: {
        const std::size_t widx = where_index(I.where);
        appendf(src_, "      const NArray& a_ = A->arrays[%u];\n", I.a);
        classify_call(I.a, R(I.b));
        if ((I.arg & 1) != 0) {
          src_ += "      if (a_.replicated) ++st->broadcast;\n";
        }
        appendf(src_,
                "      NWrite& w = WQ[wn++];\n"
                "      w.target.kind = 0; w.target.obj = a_.obj;\n"
                "      w.target.index = %s; w.target.lane = 0;\n",
                R(I.b).c_str());
        emit_value_store("w.value", I.c);
        appendf(src_, "      w.where = A->wheres[%zu];\n", widx);
        break;
      }
      case Op::kUnary:
        switch (static_cast<UnaryOp>(I.arg)) {
          case UnaryOp::kNeg:
            appendf(src_, "      %s = -%s;\n", R(I.dst).c_str(),
                    R(I.a).c_str());
            break;
          case UnaryOp::kNot:
            appendf(src_, "      %s = (%s) ? 0 : 1;\n", R(I.dst).c_str(),
                    truthy(I.a).c_str());
            break;
          case UnaryOp::kBitNot:
            appendf(src_, "      %s = ~%s;\n", R(I.dst).c_str(),
                    I64(I.a).c_str());
            break;
          case UnaryOp::kPlus:
            appendf(src_, "      %s = %s;\n", R(I.dst).c_str(),
                    R(I.a).c_str());
            break;
        }
        break;
      case Op::kBinary:
        emit_binary(I);
        break;
      case Op::kIncDec:
        appendf(src_, "      %s = %s %s 1;\n", R(I.dst).c_str(),
                R(I.a).c_str(), (I.arg & 1) != 0 ? "+" : "-");
        break;
      case Op::kCoerce:
        if (static_cast<ScalarKind>(I.arg) == ScalarKind::kFloat) {
          appendf(src_, "      %s = %s;\n", R(I.dst).c_str(),
                  F(I.a).c_str());
        } else {
          appendf(src_, "      %s = %s;\n", R(I.dst).c_str(),
                  I64(I.a).c_str());
        }
        break;
      case Op::kJump:
        appendf(src_, "      goto L%d;\n", I.jump);
        break;
      case Op::kJumpIfFalse:
        appendf(src_, "      if (!(%s)) goto L%d;\n", truthy(I.a).c_str(),
                I.jump);
        break;
      case Op::kJumpIfTrue:
        appendf(src_, "      if (%s) goto L%d;\n", truthy(I.a).c_str(),
                I.jump);
        break;
      case Op::kAbs:
        if (rt_[I.a] == kFloat) {
          appendf(src_, "      %s = __builtin_fabs(%s);\n", R(I.dst).c_str(),
                  R(I.a).c_str());
        } else {
          appendf(src_, "      %s = %s < 0 ? -%s : %s;\n", R(I.dst).c_str(),
                  R(I.a).c_str(), R(I.a).c_str(), R(I.a).c_str());
        }
        break;
      case Op::kMinMax: {
        // Exactly std::min(a, b) / std::max(a, b): the comparison picks b
        // only when strictly ordered, so NaN/-0.0 behaviour matches.
        const bool flt = rt_[I.dst] == kFloat;
        const std::string a = flt ? F(I.a) : R(I.a);
        const std::string b = flt ? F(I.b) : R(I.b);
        if ((I.arg & 1) != 0) {
          appendf(src_, "      %s = (%s < %s) ? %s : %s;\n",
                  R(I.dst).c_str(), b.c_str(), a.c_str(), b.c_str(),
                  a.c_str());
        } else {
          appendf(src_, "      %s = (%s < %s) ? %s : %s;\n",
                  R(I.dst).c_str(), a.c_str(), b.c_str(), b.c_str(),
                  a.c_str());
        }
        break;
      }
      case Op::kPower2:
        appendf(src_,
                "      const i64 kv = %s;\n"
                "      if (kv < 0 || kv > 62) goto uc_error;\n"
                "      %s = (i64)1 << kv;\n",
                I64(I.a).c_str(), R(I.dst).c_str());
        break;
      case Op::kRand:
        appendf(src_, "      %s = (i64)(uc_sm64(rng) >> 33);\n",
                R(I.dst).c_str());
        break;
      case Op::kReduceBegin: {
        const std::size_t ri = I.a;
        const ReduceMeta& m = rmeta_[ri];
        appendf(src_,
                "      const NReduce& Rd = A->reduces[%zu];\n"
                "      rs_suppress = Rd.suppress != 0;\n"
                "      rs_any = false; rs_enabled_any = false; rs_tuple = "
                "0;\n"
                "      rs_parent_vp = lane_vp;\n"
                "      acc%zu = %s;\n"
                "      if (Rd.prod == 0) goto L%d;\n"
                "      for (i64 d = 0; d < Rd.base_dims; ++d) rs_coords[d] = "
                "lane_coords[d];\n",
                ri, ri, identity_text(m).c_str(), I.jump);
        for (std::size_t s = 0; s < m.n_sets; ++s) {
          appendf(src_,
                  "      rs_pos[%zu] = 0; rs_elem[%zu] = Rd.values[%zu][0];\n"
                  "      rs_coords[Rd.base_dims + %zu] = 0;\n",
                  s, s, s, s);
        }
        src_ += "      rs_vp = rs_parent_vp * Rd.prod;\n";
        break;
      }
      case Op::kReduceFold:
        emit_fold(ip, I);
        break;
      case Op::kReduceSkipOthers:
        appendf(src_, "      if (rs_enabled_any) goto L%d;\n", I.jump);
        break;
      case Op::kReduceNext: {
        const auto ri =
            static_cast<std::size_t>(inst_reduce_[ip]);
        const ReduceMeta& m = rmeta_[ri];
        appendf(src_,
                "      const NReduce& Rd = A->reduces[%zu];\n"
                "      rs_enabled_any = false;\n"
                "      if (++rs_tuple < Rd.prod) {\n"
                "        do {\n",
                ri);
        for (std::size_t s = m.n_sets; s-- > 0;) {
          appendf(src_,
                  "          if (++rs_pos[%zu] < (u64)Rd.sizes[%zu]) break;\n"
                  "          rs_pos[%zu] = 0;\n",
                  s, s, s);
        }
        src_ +=
            "        } while (0);\n"
            "        i64 tf = 0;\n";
        for (std::size_t s = 0; s < m.n_sets; ++s) {
          appendf(src_,
                  "        rs_elem[%zu] = Rd.values[%zu][rs_pos[%zu]];\n"
                  "        rs_coords[Rd.base_dims + %zu] = (i64)rs_pos[%zu];\n"
                  "        tf = tf * Rd.sizes[%zu] + (i64)rs_pos[%zu];\n",
                  s, s, s, s, s, s, s);
        }
        appendf(src_,
                "        rs_vp = rs_parent_vp * Rd.prod + tf;\n"
                "        goto L%d;\n"
                "      }\n",
                I.jump);
        break;
      }
      case Op::kReduceEnd: {
        const auto ri =
            static_cast<std::size_t>(inst_reduce_[ip]);
        const ReduceMeta& m = rmeta_[ri];
        if (m.flt && m.acc == kInt) {
          appendf(src_, "      %s = (double)acc%zu;\n", R(I.dst).c_str(), ri);
        } else {
          appendf(src_, "      %s = acc%zu;\n", R(I.dst).c_str(), ri);
        }
        break;
      }
      case Op::kMemberBoundary:
        appendf(src_, "      st = stats0 + %u;\n", I.a);
        if (k_.uses_rand) {
          appendf(src_,
                  "      rng = A->base_seed ^ ((A->stmt_id + %uull) * "
                  "0x9e3779b97f4a7c15ull) ^ ((u64)lane_vp + "
                  "0x5851f42d4c957f2dull);\n",
                  I.a);
        }
        break;
      case Op::kRet: {
        if (rt_[I.a] == kFloat) {
          appendf(src_,
                  "      results[kk].flt = true; results[kk].i = 0; "
                  "results[kk].f = %s;\n",
                  R(I.a).c_str());
        } else {
          appendf(src_,
                  "      results[kk].flt = false; results[kk].i = %s; "
                  "results[kk].f = 0.0;\n",
                  R(I.a).c_str());
        }
        src_ += "      goto uc_lane_done;\n";
        break;
      }
    }
    src_ += "    }\n";
  }

  void emit_binary(const Inst& I) {
    const auto op = static_cast<BinaryOp>(I.arg);
    const bool flt = rt_[I.a] == kFloat || rt_[I.b] == kFloat;
    const std::string a = flt ? F(I.a) : R(I.a);
    const std::string b = flt ? F(I.b) : R(I.b);
    const char* d = nullptr;
    switch (op) {
      case BinaryOp::kAdd: d = "+"; break;
      case BinaryOp::kSub: d = "-"; break;
      case BinaryOp::kMul: d = "*"; break;
      case BinaryOp::kDiv:
        if (flt) {
          appendf(src_, "      %s = %s / %s;\n", R(I.dst).c_str(), a.c_str(),
                  b.c_str());
        } else {
          appendf(src_,
                  "      if (%s == 0) goto uc_error;\n"
                  "      %s = %s / %s;\n",
                  R(I.b).c_str(), R(I.dst).c_str(), a.c_str(), b.c_str());
        }
        return;
      case BinaryOp::kMod:
        appendf(src_,
                "      const i64 bb = %s;\n"
                "      if (bb == 0) goto uc_error;\n"
                "      %s = %s %% bb;\n",
                I64(I.b).c_str(), R(I.dst).c_str(), I64(I.a).c_str());
        return;
      case BinaryOp::kEq: d = "=="; break;
      case BinaryOp::kNe: d = "!="; break;
      case BinaryOp::kLt: d = "<"; break;
      case BinaryOp::kGt: d = ">"; break;
      case BinaryOp::kLe: d = "<="; break;
      case BinaryOp::kGe: d = ">="; break;
      case BinaryOp::kBitAnd:
        appendf(src_, "      %s = %s & %s;\n", R(I.dst).c_str(),
                I64(I.a).c_str(), I64(I.b).c_str());
        return;
      case BinaryOp::kBitOr:
        appendf(src_, "      %s = %s | %s;\n", R(I.dst).c_str(),
                I64(I.a).c_str(), I64(I.b).c_str());
        return;
      case BinaryOp::kBitXor:
        appendf(src_, "      %s = %s ^ %s;\n", R(I.dst).c_str(),
                I64(I.a).c_str(), I64(I.b).c_str());
        return;
      case BinaryOp::kShl:
        appendf(src_, "      %s = %s << (%s & 63);\n", R(I.dst).c_str(),
                I64(I.a).c_str(), I64(I.b).c_str());
        return;
      case BinaryOp::kShr:
        appendf(src_, "      %s = %s >> (%s & 63);\n", R(I.dst).c_str(),
                I64(I.a).c_str(), I64(I.b).c_str());
        return;
      case BinaryOp::kLogAnd:
      case BinaryOp::kLogOr:
        // Lowered to jumps by the compiler; unreachable (exec.cpp agrees).
        appendf(src_, "      %s = 0;\n", R(I.dst).c_str());
        return;
    }
    const bool cmp = op >= BinaryOp::kEq && op <= BinaryOp::kGe;
    if (cmp) {
      appendf(src_, "      %s = (%s %s %s) ? 1 : 0;\n", R(I.dst).c_str(),
              a.c_str(), d, b.c_str());
    } else {
      appendf(src_, "      %s = %s %s %s;\n", R(I.dst).c_str(), a.c_str(), d,
              b.c_str());
    }
  }

  void emit_fold(std::size_t ip, const Inst& I) {
    const auto ri = static_cast<std::size_t>(inst_reduce_[ip]);
    const ReduceMeta& m = rmeta_[ri];
    const std::string acc = "acc" + std::to_string(ri);
    const std::string v = m.acc == kFloat ? F(I.a) : I64(I.a);
    switch (m.op) {
      case ReduceKind::kAdd:
        appendf(src_, "      %s += %s;\n", acc.c_str(), v.c_str());
        break;
      case ReduceKind::kMul:
        appendf(src_, "      %s *= %s;\n", acc.c_str(), v.c_str());
        break;
      case ReduceKind::kAnd:
        appendf(src_, "      %s = (%s != 0 && %s) ? 1 : 0;\n", acc.c_str(),
                acc.c_str(), truthy(I.a).c_str());
        break;
      case ReduceKind::kOr:
        appendf(src_, "      %s = (%s != 0 || %s) ? 1 : 0;\n", acc.c_str(),
                acc.c_str(), truthy(I.a).c_str());
        break;
      case ReduceKind::kXor:
        appendf(src_, "      %s ^= %s;\n", acc.c_str(), I64(I.a).c_str());
        break;
      case ReduceKind::kMax:
        // std::max(acc, v): pick v only when acc < v.
        appendf(src_, "      %s = (%s < %s) ? %s : %s;\n", acc.c_str(),
                acc.c_str(), v.c_str(), v.c_str(), acc.c_str());
        break;
      case ReduceKind::kMin:
        // std::min(acc, v): pick v only when v < acc.
        appendf(src_, "      %s = (%s < %s) ? %s : %s;\n", acc.c_str(),
                v.c_str(), acc.c_str(), v.c_str(), acc.c_str());
        break;
      case ReduceKind::kArb:
        appendf(src_, "      if (!rs_any) %s = %s;\n", acc.c_str(),
                v.c_str());
        break;
    }
    src_ += "      rs_any = true; rs_enabled_any = true;\n";
  }

  static std::string identity_text(const ReduceMeta& m) {
    const bool f = m.acc == kFloat;
    switch (m.op) {
      case ReduceKind::kAdd: return f ? "0.0" : "0";
      case ReduceKind::kMul: return f ? "1.0" : "1";
      case ReduceKind::kAnd: return "1";
      case ReduceKind::kOr: return "0";
      case ReduceKind::kXor: return "0";
      case ReduceKind::kMax:
        return f ? "-(double)(1ll << 40)" : "-(1ll << 40)";
      case ReduceKind::kMin:
        return f ? "(double)(1ll << 40)" : "((i64)1 << 40)";
      case ReduceKind::kArb: return f ? "0.0" : "0";
    }
    return "0";
  }

  const Kernel& k_;
  Prepared& out_;
  std::string src_;
  bool ok_ = true;
  std::vector<int> rt_;
  std::vector<ReduceMeta> rmeta_;
  std::vector<int> inst_reduce_;
  std::vector<bool> labels_;
};

}  // namespace

std::string emit_source(const Kernel& k, Prepared& out) {
  out.num_members = k.num_members;
  Emitter e(k, out);
  return e.run();
}

}  // namespace uc::vm::detail::native
