// ABI between the VM host and natively compiled lane kernels
// (docs/VM.md "Native tier").  A kernel compiled into a shared object
// exports two fixed symbols:
//
//   extern "C" void uc_native_entry(NativeArgs*);
//   extern "C" const NativeInfo uc_native_info;
//
// NativeArgs carries everything link-dependent — field pointers, coord
// tables, scalar snapshots, the shard's [k_begin, k_end) slice of the
// active-lane list — so the emitted code bakes in only kernel-static
// facts (instruction sequence, register types, pool constants, operand
// table indices).  The same .so therefore stays valid across executions,
// processes and mappings, which is what makes the on-disk cache sound.
//
// The emitted source defines byte-identical mirrors of Value, Write and
// AccessStats and static_asserts their sizes/offsets against numbers the
// emitter measured in the host process; a layout drift fails the emitted
// compile instead of corrupting memory.  NativeInfo carries the ABI
// version and the source hash so a stale or foreign cache entry is
// detected before the first call.
#pragma once

#include <cstdint>

namespace uc::vm::detail::native {

// Bump whenever NativeArgs / the mirrored host structs change shape.
inline constexpr std::uint32_t kAbiVersion = 1;

// Mirror of kernel::Engine's LinkedElem (resolved per execution).
struct NElem {
  const std::int64_t* vals = nullptr;
  std::int64_t k = 0;
  std::int64_t width = 0;
  std::int32_t depth = 0;
};

// Mirror of LinkedScalar: globals/frame scalars are snapshotted by value
// (writes are buffered, so the slot is stable for the whole statement);
// lane-locals pass their backing store (a host Value array) plus the
// space translation depth.
struct NScalar {
  std::int64_t i = 0;               // snapshot, int representation
  double f = 0.0;                   // snapshot, float representation
  const void* store = nullptr;      // lane-local: Value* backing store
  void* owner = nullptr;            // lane-local: owning LaneSpace*
  std::int64_t slot = 0;
  std::int32_t depth = 0;
  std::uint8_t home = 0;            // 0 global / 1 frame / 2 lane-local
};

// Mirror of LinkedArray's hot-loop caches.
struct NArray {
  const std::uint64_t* data = nullptr;
  const std::int64_t* owners = nullptr;     // cm::VpIndex
  const std::int64_t* vp_coords = nullptr;  // geom_matches: coord table
  const std::int64_t* adims = nullptr;
  const std::int64_t* astrides = nullptr;
  void* obj = nullptr;  // ArrayObj*, for WriteTarget records
  std::int64_t rank = 0;
  std::uint8_t mode = 0;  // 0 frontend / 1 local-replicated / 2 remote
  std::uint8_t geom_matches = 0;
  std::uint8_t slice = 0;
  std::uint8_t replicated = 0;
};

// Mirror of LinkedReduce (value pointers + sizes are link-dependent; the
// set count, fold operator and float-ness are kernel-static and baked
// into the emitted code).
struct NReduce {
  const std::int64_t* values[4] = {};
  std::int64_t sizes[4] = {};
  std::int64_t prod = 1;
  std::int64_t base_dims = 0;
  std::uint8_t suppress = 0;  // partition_optimized, set per statement
};

struct NativeArgs {
  // Chunk: positions [k_begin, k_end) of the active-lane list.
  std::int64_t k_begin = 0;
  std::int64_t k_end = 0;
  const std::int64_t* active = nullptr;

  // Statement space.
  const std::int64_t* vps = nullptr;
  const std::int64_t* coords = nullptr;  // lane-major, n_dims per lane
  std::int64_t n_dims = 0;
  const std::int64_t* const* parent_lanes = nullptr;  // [depth d] -> array
  std::int32_t max_depth = 0;

  // Linked operand tables (indexed by the kernel's operand slots).
  const NElem* elems = nullptr;
  const NScalar* scalars = nullptr;
  const NArray* arrays = nullptr;
  const NReduce* reduces = nullptr;

  // Outputs.  results is the host's Value array indexed by position kk;
  // writes is the worker arena's Write storage starting at this chunk's
  // span, pre-sized to max_writes_per_lane * (k_end - k_begin).
  void* results = nullptr;
  void* writes = nullptr;
  std::int64_t writes_count = 0;  // out: records actually appended
  void* stats = nullptr;          // AccessStats[num_members]

  // Error-site table: Inst::where pointers, indexed by emit-time constant.
  const void* const* wheres = nullptr;
  void* frame = nullptr;  // for kFrame write targets

  std::uint64_t stmt_id = 0;
  std::uint64_t base_seed = 0;
  std::uint64_t news_op = 0;
  std::uint64_t router_op = 0;

  // Out: nonzero when the kernel hit a condition it cannot report itself
  // (bounds error, division by zero, ...).  The host then discards the
  // buffered state and re-runs the statement on the bytecode engine,
  // which raises the identical error (errors are deterministic).
  std::int64_t error = 0;
};

struct NativeInfo {
  std::uint32_t abi_version = 0;
  std::uint32_t sizeof_args = 0;
  std::uint64_t source_hash = 0;
};

}  // namespace uc::vm::detail::native
