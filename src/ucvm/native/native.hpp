// The native lane-kernel tier (docs/VM.md "Native tier"): lowers bytecode
// Kernels to C++ source, compiles them out-of-process with the host
// toolchain into shared objects, and dlopens the result.  The Backend
// owns the emit -> cache -> compile -> load pipeline and the per-Kernel
// prepared-program cache; dispatch (building NativeArgs from the link
// tables and running chunks on the thread pool) stays in kernel::Engine,
// which is the only code that can see the linked operand state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ucvm/kernel/bytecode.hpp"
#include "ucvm/native/abi.hpp"

namespace uc::vm::detail::native {

// A kernel lowered, compiled and loaded: the entry point plus the
// kernel-static metadata the host needs to validate and dispatch.
struct Prepared {
  using EntryFn = void (*)(NativeArgs*);
  EntryFn entry = nullptr;
  std::uint64_t source_hash = 0;
  bool cache_hit = false;  // loaded from disk without recompiling
  // Emit-time assumptions the host re-validates per dispatch; a mismatch
  // (e.g. a scalar dynamically holding the other representation) falls
  // back to bytecode for that execution only.
  std::vector<std::uint8_t> scalar_flt;  // per kernel scalar slot
  std::vector<std::uint8_t> array_flt;   // per kernel array slot
  // Inst::where pointers in emission order (indexed by the constants the
  // emitted code passes back); pointers are process-local, so they travel
  // via NativeArgs rather than being baked into the cached .so.
  std::vector<const lang::Expr*> wheres;
  // Upper bound of buffered writes per lane (count of store instructions).
  std::size_t max_writes_per_lane = 0;
  std::uint32_t num_members = 1;
};

struct BackendOptions {
  std::string cache_dir;  // empty: $UC_NATIVE_CACHE_DIR or a /tmp default
  std::string cc;         // empty: $UC_NATIVE_CC or "c++"
  std::function<void(const std::string&)> log;  // may be null
};

class Backend {
 public:
  explicit Backend(BackendOptions opts);
  ~Backend();
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  // Emit + compile + load `k`, cached per Kernel pointer (kernels are
  // owned by the Engine's caches, so the pointer is stable).  Returns
  // nullptr when the emitter declines the kernel or the toolchain is
  // unavailable/broken — the caller then runs the kernel on the bytecode
  // tier.  Negative results are cached too.
  const Prepared* prepare(const kernel::Kernel& k);

  bool toolchain_ok() const { return toolchain_ok_; }
  const std::string& cache_dir() const { return cache_dir_; }

  // Counters for tests, ucc bench and RunResult introspection.
  std::uint64_t kernels_compiled() const { return kernels_compiled_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t emit_declined() const { return emit_declined_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t assume_failures() const { return assume_failures_; }
  void note_dispatch() { ++dispatches_; }
  void note_assume_failure() { ++assume_failures_; }

 private:
  struct Loaded {
    void* handle = nullptr;
    Prepared::EntryFn entry = nullptr;
    bool cache_hit = false;
  };
  Loaded load_or_compile(const std::string& source, std::uint64_t hash);
  bool compile_to(const std::string& src_path, const std::string& so_path,
                  std::uint64_t hash);
  void note(const std::string& msg) const;

  std::string cache_dir_;
  std::string cc_;
  std::string extra_flags_;
  std::function<void(const std::string&)> log_;
  bool cache_dir_ok_ = false;
  bool toolchain_ok_ = true;       // until a compile fails structurally
  bool warned_toolchain_ = false;  // loud notice printed once
  std::unordered_map<const kernel::Kernel*, std::unique_ptr<Prepared>> cache_;
  std::vector<void*> handles_;  // dlclosed on destruction
  std::uint64_t kernels_compiled_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t emit_declined_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t assume_failures_ = 0;
};

// Lowers `k` to a self-contained C++ translation unit implementing
// uc_native_entry/uc_native_info, filling the kernel-static metadata in
// `out`.  Returns an empty string when the kernel uses a feature the
// emitter does not cover (register type conflicts, float-typed arms in an
// int reduction, ...) — the caller falls back to bytecode.  The source
// text is a pure function of the kernel, so its hash keys the .so cache.
std::string emit_source(const kernel::Kernel& k, Prepared& out);

}  // namespace uc::vm::detail::native
