// Runtime scalar values.  UC has two numeric representations at runtime:
// 64-bit integers (int/char/bool) and doubles (float/double).  Values are
// bit-cast into cm::Bits when stored in machine fields.
#pragma once

#include <cstdint>
#include <string>

#include "cm/ops.hpp"
#include "uclang/ast.hpp"

namespace uc::vm {

struct Value {
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0.0;

  static Value of_int(std::int64_t v) {
    Value out;
    out.i = v;
    return out;
  }
  static Value of_float(double v) {
    Value out;
    out.is_float = true;
    out.f = v;
    return out;
  }
  static Value of_bool(bool v) { return of_int(v ? 1 : 0); }

  std::int64_t as_int() const {
    return is_float ? static_cast<std::int64_t>(f) : i;
  }
  double as_float() const { return is_float ? f : static_cast<double>(i); }
  bool truthy() const { return is_float ? f != 0.0 : i != 0; }

  cm::Bits to_bits() const {
    return is_float ? cm::from_float(f) : cm::from_int(i);
  }
  static Value from_bits(cm::Bits b, bool as_float_type) {
    return as_float_type ? of_float(cm::as_float(b)) : of_int(cm::as_int(b));
  }

  // Coerce to the representation implied by a scalar kind.
  Value coerce(lang::ScalarKind kind) const {
    if (kind == lang::ScalarKind::kFloat) return of_float(as_float());
    return of_int(as_int());
  }

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_float != b.is_float) return a.as_float() == b.as_float();
    return a.is_float ? a.f == b.f : a.i == b.i;
  }
};

}  // namespace uc::vm
