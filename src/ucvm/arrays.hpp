// Runtime array objects: a UC array is a CM field plus a data mapping
// (element -> owning VP).  The mapping starts as the compiler default
// (element e on VP e, the paper's "corresponding elements on a common
// processor") and may be rewritten by map sections (permute/fold/copy).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cm/machine.hpp"
#include "ucvm/value.hpp"

namespace uc::vm {

class ArrayObj;
using ArrayPtr = std::shared_ptr<ArrayObj>;

class ArrayObj {
 public:
  ArrayObj(cm::Machine& machine, std::string name, lang::ScalarKind scalar,
           std::vector<std::int64_t> dims);
  ~ArrayObj();

  ArrayObj(const ArrayObj&) = delete;
  ArrayObj& operator=(const ArrayObj&) = delete;

  // An array slice (paper §3: "pointers may be used only to pass an array
  // (or an array slice) as an argument"): a view of the trailing
  // dimensions of `parent` at a fixed prefix offset.  Shares the parent's
  // CM field and data mapping; keeps the parent alive.
  static ArrayPtr make_slice(const ArrayPtr& parent, std::int64_t offset,
                             std::vector<std::int64_t> dims);

  bool is_slice() const { return parent_ != nullptr; }

  const std::string& name() const { return name_; }
  lang::ScalarKind scalar() const { return scalar_; }
  bool is_float() const { return scalar_ == lang::ScalarKind::kFloat; }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t size() const { return size_; }

  // Row-major flattening with bounds reporting: returns -1 when any index
  // is out of range (callers turn that into a UcRuntimeError or skip,
  // depending on context).
  std::int64_t flatten(const std::int64_t* indices, std::size_t count) const;

  // Row-major strides matching dims() (strides()[rank-1] == 1).
  const std::vector<std::int64_t>& strides() const { return strides_; }

  // Element coordinates of a flat index (row-major).
  void unflatten(std::int64_t flat, std::int64_t* out) const;

  Value load(std::int64_t flat) const;
  void store(std::int64_t flat, Value v);

  bool is_defined(std::int64_t flat) const;
  void clear_defined();
  void clear_defined_at(std::int64_t flat);

  // Data mapping (slices delegate to their parent, shifted by the slice
  // offset).
  cm::VpIndex owner(std::int64_t flat) const {
    if (parent_) return parent_->owner(offset_ + flat);
    return owner_[static_cast<std::size_t>(flat)];
  }
  void set_owner(std::int64_t flat, cm::VpIndex vp) {
    if (parent_) {
      parent_->set_owner(offset_ + flat, vp);
      return;
    }
    owner_[static_cast<std::size_t>(flat)] = vp;
  }
  bool replicated() const {
    return parent_ ? parent_->replicated() : replicated_;
  }
  void set_replicated(std::int64_t copies) {
    replicated_ = true;
    replica_count_ = copies;
  }
  std::int64_t replica_count() const { return replica_count_; }

  cm::Machine& machine() const { return machine_; }
  cm::Field& field() const {
    return parent_ ? parent_->field() : machine_.field(field_);
  }

  // Hot-loop accessors for the bytecode engine: contiguous element storage
  // and owner table with the slice offset already applied, so element e of
  // this view is raw_data()[e] / owner_data()[e].  Read-only — stores must
  // go through store(), which maintains the field's defined flags.
  const cm::Bits* raw_data() const { return field().raw().data() + offset_; }
  const cm::VpIndex* owner_data() const {
    return parent_ ? parent_->owner_data() + offset_ : owner_.data();
  }

  // Lazily-built row-major coordinate table: coord_table()[v * rank + d]
  // is coordinate d of flat index v.  Pure geometry (never invalidated);
  // the bytecode engine's NEWS classification uses it in place of
  // per-access division.  Build it from one thread (the engine's link
  // step) before lanes run.
  const std::int64_t* coord_table() const;
  const cm::Geometry& geometry() const {
    return parent_ ? parent_->geometry() : machine_.geometry(geom_);
  }

 private:
  cm::Machine& machine_;
  std::string name_;
  lang::ScalarKind scalar_;
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;
  std::int64_t size_ = 1;
  cm::GeomId geom_;
  cm::FieldId field_;
  std::vector<cm::VpIndex> owner_;
  mutable std::vector<std::int64_t> coord_table_;
  bool replicated_ = false;
  std::int64_t replica_count_ = 1;

  // Slice view state (null/0 for owning arrays).  parent_ always points
  // at the owning root array (nested slices collapse), and offset_ is the
  // root-relative flat offset.
  ArrayPtr parent_;
  std::int64_t offset_ = 0;

  explicit ArrayObj(cm::Machine& machine) : machine_(machine) {}
};

}  // namespace uc::vm
