file(REMOVE_RECURSE
  "CMakeFiles/test_uclang.dir/diagnostics_test.cpp.o"
  "CMakeFiles/test_uclang.dir/diagnostics_test.cpp.o.d"
  "CMakeFiles/test_uclang.dir/lexer_test.cpp.o"
  "CMakeFiles/test_uclang.dir/lexer_test.cpp.o.d"
  "CMakeFiles/test_uclang.dir/parser_test.cpp.o"
  "CMakeFiles/test_uclang.dir/parser_test.cpp.o.d"
  "CMakeFiles/test_uclang.dir/sema_test.cpp.o"
  "CMakeFiles/test_uclang.dir/sema_test.cpp.o.d"
  "test_uclang"
  "test_uclang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uclang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
