# Empty dependencies file for test_uclang.
# This may be replaced when dependencies are built.
