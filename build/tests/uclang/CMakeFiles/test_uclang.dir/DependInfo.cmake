
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/uclang/diagnostics_test.cpp" "tests/uclang/CMakeFiles/test_uclang.dir/diagnostics_test.cpp.o" "gcc" "tests/uclang/CMakeFiles/test_uclang.dir/diagnostics_test.cpp.o.d"
  "/root/repo/tests/uclang/lexer_test.cpp" "tests/uclang/CMakeFiles/test_uclang.dir/lexer_test.cpp.o" "gcc" "tests/uclang/CMakeFiles/test_uclang.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/uclang/parser_test.cpp" "tests/uclang/CMakeFiles/test_uclang.dir/parser_test.cpp.o" "gcc" "tests/uclang/CMakeFiles/test_uclang.dir/parser_test.cpp.o.d"
  "/root/repo/tests/uclang/sema_test.cpp" "tests/uclang/CMakeFiles/test_uclang.dir/sema_test.cpp.o" "gcc" "tests/uclang/CMakeFiles/test_uclang.dir/sema_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uclang/CMakeFiles/uc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
