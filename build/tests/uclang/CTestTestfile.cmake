# CMake generated Testfile for 
# Source directory: /root/repo/tests/uclang
# Build directory: /root/repo/build/tests/uclang
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_uclang "/root/repo/build/tests/uclang/test_uclang")
set_tests_properties(test_uclang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/uclang/CMakeLists.txt;1;uc_add_test;/root/repo/tests/uclang/CMakeLists.txt;0;")
