# CMake generated Testfile for 
# Source directory: /root/repo/tests/uc
# Build directory: /root/repo/build/tests/uc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_uc_api "/root/repo/build/tests/uc/test_uc_api")
set_tests_properties(test_uc_api PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/uc/CMakeLists.txt;1;uc_add_test;/root/repo/tests/uc/CMakeLists.txt;0;")
