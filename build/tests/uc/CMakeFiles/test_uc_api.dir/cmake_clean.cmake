file(REMOVE_RECURSE
  "CMakeFiles/test_uc_api.dir/api_test.cpp.o"
  "CMakeFiles/test_uc_api.dir/api_test.cpp.o.d"
  "CMakeFiles/test_uc_api.dir/differential_test.cpp.o"
  "CMakeFiles/test_uc_api.dir/differential_test.cpp.o.d"
  "test_uc_api"
  "test_uc_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
