# Empty compiler generated dependencies file for test_uc_api.
# This may be replaced when dependencies are built.
