
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/uc/api_test.cpp" "tests/uc/CMakeFiles/test_uc_api.dir/api_test.cpp.o" "gcc" "tests/uc/CMakeFiles/test_uc_api.dir/api_test.cpp.o.d"
  "/root/repo/tests/uc/differential_test.cpp" "tests/uc/CMakeFiles/test_uc_api.dir/differential_test.cpp.o" "gcc" "tests/uc/CMakeFiles/test_uc_api.dir/differential_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uc/CMakeFiles/uc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/seqref/CMakeFiles/uc_seqref.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/uc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ucvm/CMakeFiles/uc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/cm/CMakeFiles/uc_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/uc_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/uclang/CMakeFiles/uc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
