# CMake generated Testfile for 
# Source directory: /root/repo/tests/xform
# Build directory: /root/repo/build/tests/xform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_xform "/root/repo/build/tests/xform/test_xform")
set_tests_properties(test_xform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/xform/CMakeLists.txt;1;uc_add_test;/root/repo/tests/xform/CMakeLists.txt;0;")
