file(REMOVE_RECURSE
  "CMakeFiles/test_xform.dir/const_fold_test.cpp.o"
  "CMakeFiles/test_xform.dir/const_fold_test.cpp.o.d"
  "CMakeFiles/test_xform.dir/map_rewrite_test.cpp.o"
  "CMakeFiles/test_xform.dir/map_rewrite_test.cpp.o.d"
  "CMakeFiles/test_xform.dir/solve_lower_test.cpp.o"
  "CMakeFiles/test_xform.dir/solve_lower_test.cpp.o.d"
  "test_xform"
  "test_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
