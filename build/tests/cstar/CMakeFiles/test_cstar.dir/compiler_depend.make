# Empty compiler generated dependencies file for test_cstar.
# This may be replaced when dependencies are built.
