file(REMOVE_RECURSE
  "CMakeFiles/test_cstar.dir/domain_test.cpp.o"
  "CMakeFiles/test_cstar.dir/domain_test.cpp.o.d"
  "CMakeFiles/test_cstar.dir/paths_test.cpp.o"
  "CMakeFiles/test_cstar.dir/paths_test.cpp.o.d"
  "test_cstar"
  "test_cstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
