
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cstar/domain_test.cpp" "tests/cstar/CMakeFiles/test_cstar.dir/domain_test.cpp.o" "gcc" "tests/cstar/CMakeFiles/test_cstar.dir/domain_test.cpp.o.d"
  "/root/repo/tests/cstar/paths_test.cpp" "tests/cstar/CMakeFiles/test_cstar.dir/paths_test.cpp.o" "gcc" "tests/cstar/CMakeFiles/test_cstar.dir/paths_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cstar/CMakeFiles/uc_cstar.dir/DependInfo.cmake"
  "/root/repo/build/src/seqref/CMakeFiles/uc_seqref.dir/DependInfo.cmake"
  "/root/repo/build/src/cm/CMakeFiles/uc_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
