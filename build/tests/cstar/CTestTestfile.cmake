# CMake generated Testfile for 
# Source directory: /root/repo/tests/cstar
# Build directory: /root/repo/build/tests/cstar
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_cstar "/root/repo/build/tests/cstar/test_cstar")
set_tests_properties(test_cstar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/cstar/CMakeLists.txt;1;uc_add_test;/root/repo/tests/cstar/CMakeLists.txt;0;")
