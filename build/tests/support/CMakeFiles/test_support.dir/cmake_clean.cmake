file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/diag_test.cpp.o"
  "CMakeFiles/test_support.dir/diag_test.cpp.o.d"
  "CMakeFiles/test_support.dir/rng_test.cpp.o"
  "CMakeFiles/test_support.dir/rng_test.cpp.o.d"
  "CMakeFiles/test_support.dir/source_test.cpp.o"
  "CMakeFiles/test_support.dir/source_test.cpp.o.d"
  "CMakeFiles/test_support.dir/str_test.cpp.o"
  "CMakeFiles/test_support.dir/str_test.cpp.o.d"
  "test_support"
  "test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
