# CMake generated Testfile for 
# Source directory: /root/repo/tests/codegen
# Build directory: /root/repo/build/tests/codegen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_codegen "/root/repo/build/tests/codegen/test_codegen")
set_tests_properties(test_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/codegen/CMakeLists.txt;1;uc_add_test;/root/repo/tests/codegen/CMakeLists.txt;0;")
