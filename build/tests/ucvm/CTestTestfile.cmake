# CMake generated Testfile for 
# Source directory: /root/repo/tests/ucvm
# Build directory: /root/repo/build/tests/ucvm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_ucvm "/root/repo/build/tests/ucvm/test_ucvm")
set_tests_properties(test_ucvm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/ucvm/CMakeLists.txt;1;uc_add_test;/root/repo/tests/ucvm/CMakeLists.txt;0;")
