
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ucvm/interp_basic_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_basic_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_basic_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_cse_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_cse_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_cse_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_errors_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_errors_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_errors_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_extensions_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_extensions_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_extensions_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_mapping_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_mapping_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_mapping_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_paper_programs_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_paper_programs_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_paper_programs_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_par_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_par_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_par_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_reduce_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_reduce_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_reduce_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_semantics_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_semantics_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_semantics_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_slices_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_slices_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_slices_test.cpp.o.d"
  "/root/repo/tests/ucvm/interp_solve_test.cpp" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_solve_test.cpp.o" "gcc" "tests/ucvm/CMakeFiles/test_ucvm.dir/interp_solve_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ucvm/CMakeFiles/uc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/uc/CMakeFiles/uc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/seqref/CMakeFiles/uc_seqref.dir/DependInfo.cmake"
  "/root/repo/build/src/cm/CMakeFiles/uc_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/uc_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/uc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/uclang/CMakeFiles/uc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
