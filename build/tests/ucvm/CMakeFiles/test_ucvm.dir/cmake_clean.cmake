file(REMOVE_RECURSE
  "CMakeFiles/test_ucvm.dir/interp_basic_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_basic_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_cse_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_cse_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_errors_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_errors_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_extensions_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_extensions_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_mapping_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_mapping_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_paper_programs_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_paper_programs_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_par_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_par_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_reduce_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_reduce_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_semantics_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_semantics_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_slices_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_slices_test.cpp.o.d"
  "CMakeFiles/test_ucvm.dir/interp_solve_test.cpp.o"
  "CMakeFiles/test_ucvm.dir/interp_solve_test.cpp.o.d"
  "test_ucvm"
  "test_ucvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
