# Empty dependencies file for test_ucvm.
# This may be replaced when dependencies are built.
