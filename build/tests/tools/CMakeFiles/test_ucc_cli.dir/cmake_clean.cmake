file(REMOVE_RECURSE
  "CMakeFiles/test_ucc_cli.dir/ucc_cli_test.cpp.o"
  "CMakeFiles/test_ucc_cli.dir/ucc_cli_test.cpp.o.d"
  "test_ucc_cli"
  "test_ucc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
