# CMake generated Testfile for 
# Source directory: /root/repo/tests/tools
# Build directory: /root/repo/build/tests/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_ucc_cli "/root/repo/build/tests/tools/test_ucc_cli")
set_tests_properties(test_ucc_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/tools/CMakeLists.txt;1;uc_add_test;/root/repo/tests/tools/CMakeLists.txt;0;")
