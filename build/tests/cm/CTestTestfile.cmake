# CMake generated Testfile for 
# Source directory: /root/repo/tests/cm
# Build directory: /root/repo/build/tests/cm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_cm "/root/repo/build/tests/cm/test_cm")
set_tests_properties(test_cm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/cm/CMakeLists.txt;1;uc_add_test;/root/repo/tests/cm/CMakeLists.txt;0;")
