
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cm/context_test.cpp" "tests/cm/CMakeFiles/test_cm.dir/context_test.cpp.o" "gcc" "tests/cm/CMakeFiles/test_cm.dir/context_test.cpp.o.d"
  "/root/repo/tests/cm/geometry_test.cpp" "tests/cm/CMakeFiles/test_cm.dir/geometry_test.cpp.o" "gcc" "tests/cm/CMakeFiles/test_cm.dir/geometry_test.cpp.o.d"
  "/root/repo/tests/cm/machine_test.cpp" "tests/cm/CMakeFiles/test_cm.dir/machine_test.cpp.o" "gcc" "tests/cm/CMakeFiles/test_cm.dir/machine_test.cpp.o.d"
  "/root/repo/tests/cm/ops_test.cpp" "tests/cm/CMakeFiles/test_cm.dir/ops_test.cpp.o" "gcc" "tests/cm/CMakeFiles/test_cm.dir/ops_test.cpp.o.d"
  "/root/repo/tests/cm/thread_pool_test.cpp" "tests/cm/CMakeFiles/test_cm.dir/thread_pool_test.cpp.o" "gcc" "tests/cm/CMakeFiles/test_cm.dir/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cm/CMakeFiles/uc_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
