# Empty dependencies file for test_cm.
# This may be replaced when dependencies are built.
