file(REMOVE_RECURSE
  "CMakeFiles/test_cm.dir/context_test.cpp.o"
  "CMakeFiles/test_cm.dir/context_test.cpp.o.d"
  "CMakeFiles/test_cm.dir/geometry_test.cpp.o"
  "CMakeFiles/test_cm.dir/geometry_test.cpp.o.d"
  "CMakeFiles/test_cm.dir/machine_test.cpp.o"
  "CMakeFiles/test_cm.dir/machine_test.cpp.o.d"
  "CMakeFiles/test_cm.dir/ops_test.cpp.o"
  "CMakeFiles/test_cm.dir/ops_test.cpp.o.d"
  "CMakeFiles/test_cm.dir/thread_pool_test.cpp.o"
  "CMakeFiles/test_cm.dir/thread_pool_test.cpp.o.d"
  "test_cm"
  "test_cm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
