# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("cm")
subdirs("uclang")
subdirs("ucvm")
subdirs("cstar")
subdirs("xform")
subdirs("codegen")
subdirs("uc")
subdirs("seqref")
subdirs("tools")
subdirs("programs")
