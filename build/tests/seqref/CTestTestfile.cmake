# CMake generated Testfile for 
# Source directory: /root/repo/tests/seqref
# Build directory: /root/repo/build/tests/seqref
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_seqref "/root/repo/build/tests/seqref/test_seqref")
set_tests_properties(test_seqref PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/seqref/CMakeLists.txt;1;uc_add_test;/root/repo/tests/seqref/CMakeLists.txt;0;")
