file(REMOVE_RECURSE
  "CMakeFiles/test_seqref.dir/seqref_test.cpp.o"
  "CMakeFiles/test_seqref.dir/seqref_test.cpp.o.d"
  "test_seqref"
  "test_seqref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seqref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
