# Empty dependencies file for test_seqref.
# This may be replaced when dependencies are built.
