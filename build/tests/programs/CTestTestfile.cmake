# CMake generated Testfile for 
# Source directory: /root/repo/tests/programs
# Build directory: /root/repo/build/tests/programs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_programs "/root/repo/build/tests/programs/test_programs")
set_tests_properties(test_programs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/programs/CMakeLists.txt;1;uc_add_test;/root/repo/tests/programs/CMakeLists.txt;0;")
