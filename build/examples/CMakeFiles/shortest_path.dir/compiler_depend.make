# Empty compiler generated dependencies file for shortest_path.
# This may be replaced when dependencies are built.
