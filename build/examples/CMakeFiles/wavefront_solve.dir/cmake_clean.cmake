file(REMOVE_RECURSE
  "CMakeFiles/wavefront_solve.dir/wavefront_solve.cpp.o"
  "CMakeFiles/wavefront_solve.dir/wavefront_solve.cpp.o.d"
  "wavefront_solve"
  "wavefront_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavefront_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
