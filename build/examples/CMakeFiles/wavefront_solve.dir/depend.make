# Empty dependencies file for wavefront_solve.
# This may be replaced when dependencies are built.
