file(REMOVE_RECURSE
  "CMakeFiles/sorting.dir/sorting.cpp.o"
  "CMakeFiles/sorting.dir/sorting.cpp.o.d"
  "sorting"
  "sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
