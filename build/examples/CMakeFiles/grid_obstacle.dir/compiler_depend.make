# Empty compiler generated dependencies file for grid_obstacle.
# This may be replaced when dependencies are built.
