file(REMOVE_RECURSE
  "CMakeFiles/grid_obstacle.dir/grid_obstacle.cpp.o"
  "CMakeFiles/grid_obstacle.dir/grid_obstacle.cpp.o.d"
  "grid_obstacle"
  "grid_obstacle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_obstacle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
