file(REMOVE_RECURSE
  "libuc_cstar.a"
)
