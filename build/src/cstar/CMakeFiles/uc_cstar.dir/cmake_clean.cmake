file(REMOVE_RECURSE
  "CMakeFiles/uc_cstar.dir/domain.cpp.o"
  "CMakeFiles/uc_cstar.dir/domain.cpp.o.d"
  "CMakeFiles/uc_cstar.dir/paths.cpp.o"
  "CMakeFiles/uc_cstar.dir/paths.cpp.o.d"
  "libuc_cstar.a"
  "libuc_cstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_cstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
