# Empty compiler generated dependencies file for uc_cstar.
# This may be replaced when dependencies are built.
