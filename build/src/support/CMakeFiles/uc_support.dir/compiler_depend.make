# Empty compiler generated dependencies file for uc_support.
# This may be replaced when dependencies are built.
