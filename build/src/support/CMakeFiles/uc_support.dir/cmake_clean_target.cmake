file(REMOVE_RECURSE
  "libuc_support.a"
)
