file(REMOVE_RECURSE
  "CMakeFiles/uc_support.dir/diag.cpp.o"
  "CMakeFiles/uc_support.dir/diag.cpp.o.d"
  "CMakeFiles/uc_support.dir/source.cpp.o"
  "CMakeFiles/uc_support.dir/source.cpp.o.d"
  "CMakeFiles/uc_support.dir/str.cpp.o"
  "CMakeFiles/uc_support.dir/str.cpp.o.d"
  "libuc_support.a"
  "libuc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
