# Empty dependencies file for uc_api.
# This may be replaced when dependencies are built.
