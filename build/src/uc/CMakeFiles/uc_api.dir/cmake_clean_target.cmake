file(REMOVE_RECURSE
  "libuc_api.a"
)
