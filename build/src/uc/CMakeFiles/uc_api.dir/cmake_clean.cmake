file(REMOVE_RECURSE
  "CMakeFiles/uc_api.dir/paper_programs.cpp.o"
  "CMakeFiles/uc_api.dir/paper_programs.cpp.o.d"
  "CMakeFiles/uc_api.dir/uc.cpp.o"
  "CMakeFiles/uc_api.dir/uc.cpp.o.d"
  "libuc_api.a"
  "libuc_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
