file(REMOVE_RECURSE
  "libuc_xform.a"
)
