# Empty dependencies file for uc_xform.
# This may be replaced when dependencies are built.
