
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/const_fold.cpp" "src/xform/CMakeFiles/uc_xform.dir/const_fold.cpp.o" "gcc" "src/xform/CMakeFiles/uc_xform.dir/const_fold.cpp.o.d"
  "/root/repo/src/xform/map_rewrite.cpp" "src/xform/CMakeFiles/uc_xform.dir/map_rewrite.cpp.o" "gcc" "src/xform/CMakeFiles/uc_xform.dir/map_rewrite.cpp.o.d"
  "/root/repo/src/xform/solve_lower.cpp" "src/xform/CMakeFiles/uc_xform.dir/solve_lower.cpp.o" "gcc" "src/xform/CMakeFiles/uc_xform.dir/solve_lower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uclang/CMakeFiles/uc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
