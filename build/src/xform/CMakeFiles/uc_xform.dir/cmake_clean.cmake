file(REMOVE_RECURSE
  "CMakeFiles/uc_xform.dir/const_fold.cpp.o"
  "CMakeFiles/uc_xform.dir/const_fold.cpp.o.d"
  "CMakeFiles/uc_xform.dir/map_rewrite.cpp.o"
  "CMakeFiles/uc_xform.dir/map_rewrite.cpp.o.d"
  "CMakeFiles/uc_xform.dir/solve_lower.cpp.o"
  "CMakeFiles/uc_xform.dir/solve_lower.cpp.o.d"
  "libuc_xform.a"
  "libuc_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
