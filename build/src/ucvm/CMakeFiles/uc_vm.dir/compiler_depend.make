# Empty compiler generated dependencies file for uc_vm.
# This may be replaced when dependencies are built.
