file(REMOVE_RECURSE
  "CMakeFiles/uc_vm.dir/arrays.cpp.o"
  "CMakeFiles/uc_vm.dir/arrays.cpp.o.d"
  "CMakeFiles/uc_vm.dir/interp.cpp.o"
  "CMakeFiles/uc_vm.dir/interp.cpp.o.d"
  "CMakeFiles/uc_vm.dir/interp_constructs.cpp.o"
  "CMakeFiles/uc_vm.dir/interp_constructs.cpp.o.d"
  "CMakeFiles/uc_vm.dir/interp_expr.cpp.o"
  "CMakeFiles/uc_vm.dir/interp_expr.cpp.o.d"
  "CMakeFiles/uc_vm.dir/interp_solve.cpp.o"
  "CMakeFiles/uc_vm.dir/interp_solve.cpp.o.d"
  "libuc_vm.a"
  "libuc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
