
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ucvm/arrays.cpp" "src/ucvm/CMakeFiles/uc_vm.dir/arrays.cpp.o" "gcc" "src/ucvm/CMakeFiles/uc_vm.dir/arrays.cpp.o.d"
  "/root/repo/src/ucvm/interp.cpp" "src/ucvm/CMakeFiles/uc_vm.dir/interp.cpp.o" "gcc" "src/ucvm/CMakeFiles/uc_vm.dir/interp.cpp.o.d"
  "/root/repo/src/ucvm/interp_constructs.cpp" "src/ucvm/CMakeFiles/uc_vm.dir/interp_constructs.cpp.o" "gcc" "src/ucvm/CMakeFiles/uc_vm.dir/interp_constructs.cpp.o.d"
  "/root/repo/src/ucvm/interp_expr.cpp" "src/ucvm/CMakeFiles/uc_vm.dir/interp_expr.cpp.o" "gcc" "src/ucvm/CMakeFiles/uc_vm.dir/interp_expr.cpp.o.d"
  "/root/repo/src/ucvm/interp_solve.cpp" "src/ucvm/CMakeFiles/uc_vm.dir/interp_solve.cpp.o" "gcc" "src/ucvm/CMakeFiles/uc_vm.dir/interp_solve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uclang/CMakeFiles/uc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/cm/CMakeFiles/uc_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
