file(REMOVE_RECURSE
  "libuc_vm.a"
)
