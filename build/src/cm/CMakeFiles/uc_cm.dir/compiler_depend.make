# Empty compiler generated dependencies file for uc_cm.
# This may be replaced when dependencies are built.
