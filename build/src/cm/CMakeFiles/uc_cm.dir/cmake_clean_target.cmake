file(REMOVE_RECURSE
  "libuc_cm.a"
)
