
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cm/context.cpp" "src/cm/CMakeFiles/uc_cm.dir/context.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/context.cpp.o.d"
  "/root/repo/src/cm/cost.cpp" "src/cm/CMakeFiles/uc_cm.dir/cost.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/cost.cpp.o.d"
  "/root/repo/src/cm/field.cpp" "src/cm/CMakeFiles/uc_cm.dir/field.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/field.cpp.o.d"
  "/root/repo/src/cm/geometry.cpp" "src/cm/CMakeFiles/uc_cm.dir/geometry.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/geometry.cpp.o.d"
  "/root/repo/src/cm/machine.cpp" "src/cm/CMakeFiles/uc_cm.dir/machine.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/machine.cpp.o.d"
  "/root/repo/src/cm/ops.cpp" "src/cm/CMakeFiles/uc_cm.dir/ops.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/ops.cpp.o.d"
  "/root/repo/src/cm/thread_pool.cpp" "src/cm/CMakeFiles/uc_cm.dir/thread_pool.cpp.o" "gcc" "src/cm/CMakeFiles/uc_cm.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
