file(REMOVE_RECURSE
  "CMakeFiles/uc_cm.dir/context.cpp.o"
  "CMakeFiles/uc_cm.dir/context.cpp.o.d"
  "CMakeFiles/uc_cm.dir/cost.cpp.o"
  "CMakeFiles/uc_cm.dir/cost.cpp.o.d"
  "CMakeFiles/uc_cm.dir/field.cpp.o"
  "CMakeFiles/uc_cm.dir/field.cpp.o.d"
  "CMakeFiles/uc_cm.dir/geometry.cpp.o"
  "CMakeFiles/uc_cm.dir/geometry.cpp.o.d"
  "CMakeFiles/uc_cm.dir/machine.cpp.o"
  "CMakeFiles/uc_cm.dir/machine.cpp.o.d"
  "CMakeFiles/uc_cm.dir/ops.cpp.o"
  "CMakeFiles/uc_cm.dir/ops.cpp.o.d"
  "CMakeFiles/uc_cm.dir/thread_pool.cpp.o"
  "CMakeFiles/uc_cm.dir/thread_pool.cpp.o.d"
  "libuc_cm.a"
  "libuc_cm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
