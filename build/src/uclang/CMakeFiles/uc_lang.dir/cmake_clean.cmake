file(REMOVE_RECURSE
  "CMakeFiles/uc_lang.dir/ast.cpp.o"
  "CMakeFiles/uc_lang.dir/ast.cpp.o.d"
  "CMakeFiles/uc_lang.dir/frontend.cpp.o"
  "CMakeFiles/uc_lang.dir/frontend.cpp.o.d"
  "CMakeFiles/uc_lang.dir/lexer.cpp.o"
  "CMakeFiles/uc_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/uc_lang.dir/parser.cpp.o"
  "CMakeFiles/uc_lang.dir/parser.cpp.o.d"
  "CMakeFiles/uc_lang.dir/sema.cpp.o"
  "CMakeFiles/uc_lang.dir/sema.cpp.o.d"
  "CMakeFiles/uc_lang.dir/symbols.cpp.o"
  "CMakeFiles/uc_lang.dir/symbols.cpp.o.d"
  "CMakeFiles/uc_lang.dir/token.cpp.o"
  "CMakeFiles/uc_lang.dir/token.cpp.o.d"
  "libuc_lang.a"
  "libuc_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
