# Empty compiler generated dependencies file for uc_lang.
# This may be replaced when dependencies are built.
