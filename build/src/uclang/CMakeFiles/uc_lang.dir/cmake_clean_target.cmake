file(REMOVE_RECURSE
  "libuc_lang.a"
)
