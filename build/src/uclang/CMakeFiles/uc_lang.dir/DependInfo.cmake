
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uclang/ast.cpp" "src/uclang/CMakeFiles/uc_lang.dir/ast.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/ast.cpp.o.d"
  "/root/repo/src/uclang/frontend.cpp" "src/uclang/CMakeFiles/uc_lang.dir/frontend.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/frontend.cpp.o.d"
  "/root/repo/src/uclang/lexer.cpp" "src/uclang/CMakeFiles/uc_lang.dir/lexer.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/uclang/parser.cpp" "src/uclang/CMakeFiles/uc_lang.dir/parser.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/parser.cpp.o.d"
  "/root/repo/src/uclang/sema.cpp" "src/uclang/CMakeFiles/uc_lang.dir/sema.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/sema.cpp.o.d"
  "/root/repo/src/uclang/symbols.cpp" "src/uclang/CMakeFiles/uc_lang.dir/symbols.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/symbols.cpp.o.d"
  "/root/repo/src/uclang/token.cpp" "src/uclang/CMakeFiles/uc_lang.dir/token.cpp.o" "gcc" "src/uclang/CMakeFiles/uc_lang.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
