file(REMOVE_RECURSE
  "CMakeFiles/uc_codegen.dir/cstar_emit.cpp.o"
  "CMakeFiles/uc_codegen.dir/cstar_emit.cpp.o.d"
  "CMakeFiles/uc_codegen.dir/pretty.cpp.o"
  "CMakeFiles/uc_codegen.dir/pretty.cpp.o.d"
  "libuc_codegen.a"
  "libuc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
