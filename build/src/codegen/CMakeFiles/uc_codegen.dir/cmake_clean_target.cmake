file(REMOVE_RECURSE
  "libuc_codegen.a"
)
