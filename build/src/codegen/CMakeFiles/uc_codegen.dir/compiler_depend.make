# Empty compiler generated dependencies file for uc_codegen.
# This may be replaced when dependencies are built.
