
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/cstar_emit.cpp" "src/codegen/CMakeFiles/uc_codegen.dir/cstar_emit.cpp.o" "gcc" "src/codegen/CMakeFiles/uc_codegen.dir/cstar_emit.cpp.o.d"
  "/root/repo/src/codegen/pretty.cpp" "src/codegen/CMakeFiles/uc_codegen.dir/pretty.cpp.o" "gcc" "src/codegen/CMakeFiles/uc_codegen.dir/pretty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uclang/CMakeFiles/uc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
