file(REMOVE_RECURSE
  "libuc_seqref.a"
)
