# Empty dependencies file for uc_seqref.
# This may be replaced when dependencies are built.
