file(REMOVE_RECURSE
  "CMakeFiles/uc_seqref.dir/seqref.cpp.o"
  "CMakeFiles/uc_seqref.dir/seqref.cpp.o.d"
  "libuc_seqref.a"
  "libuc_seqref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_seqref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
