# Empty dependencies file for solve_vs_par.
# This may be replaced when dependencies are built.
