file(REMOVE_RECURSE
  "CMakeFiles/solve_vs_par.dir/solve_vs_par.cpp.o"
  "CMakeFiles/solve_vs_par.dir/solve_vs_par.cpp.o.d"
  "solve_vs_par"
  "solve_vs_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_vs_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
