file(REMOVE_RECURSE
  "CMakeFiles/fig6_shortest_path_on2.dir/fig6_shortest_path_on2.cpp.o"
  "CMakeFiles/fig6_shortest_path_on2.dir/fig6_shortest_path_on2.cpp.o.d"
  "fig6_shortest_path_on2"
  "fig6_shortest_path_on2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_shortest_path_on2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
