# Empty compiler generated dependencies file for fig6_shortest_path_on2.
# This may be replaced when dependencies are built.
