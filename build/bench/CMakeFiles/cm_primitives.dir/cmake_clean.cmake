file(REMOVE_RECURSE
  "CMakeFiles/cm_primitives.dir/cm_primitives.cpp.o"
  "CMakeFiles/cm_primitives.dir/cm_primitives.cpp.o.d"
  "cm_primitives"
  "cm_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
