# Empty dependencies file for cm_primitives.
# This may be replaced when dependencies are built.
