# Empty compiler generated dependencies file for compiler_speed.
# This may be replaced when dependencies are built.
