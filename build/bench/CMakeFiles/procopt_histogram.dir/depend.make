# Empty dependencies file for procopt_histogram.
# This may be replaced when dependencies are built.
