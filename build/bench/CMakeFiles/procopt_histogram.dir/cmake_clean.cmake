file(REMOVE_RECURSE
  "CMakeFiles/procopt_histogram.dir/procopt_histogram.cpp.o"
  "CMakeFiles/procopt_histogram.dir/procopt_histogram.cpp.o.d"
  "procopt_histogram"
  "procopt_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procopt_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
