file(REMOVE_RECURSE
  "CMakeFiles/code_opt.dir/code_opt.cpp.o"
  "CMakeFiles/code_opt.dir/code_opt.cpp.o.d"
  "code_opt"
  "code_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
