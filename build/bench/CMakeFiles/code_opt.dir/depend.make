# Empty dependencies file for code_opt.
# This may be replaced when dependencies are built.
