file(REMOVE_RECURSE
  "CMakeFiles/fig8_grid_obstacle.dir/fig8_grid_obstacle.cpp.o"
  "CMakeFiles/fig8_grid_obstacle.dir/fig8_grid_obstacle.cpp.o.d"
  "fig8_grid_obstacle"
  "fig8_grid_obstacle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_grid_obstacle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
