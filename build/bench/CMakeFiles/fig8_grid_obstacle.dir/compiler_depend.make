# Empty compiler generated dependencies file for fig8_grid_obstacle.
# This may be replaced when dependencies are built.
