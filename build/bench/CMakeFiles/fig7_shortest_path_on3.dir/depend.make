# Empty dependencies file for fig7_shortest_path_on3.
# This may be replaced when dependencies are built.
