file(REMOVE_RECURSE
  "CMakeFiles/fig7_shortest_path_on3.dir/fig7_shortest_path_on3.cpp.o"
  "CMakeFiles/fig7_shortest_path_on3.dir/fig7_shortest_path_on3.cpp.o.d"
  "fig7_shortest_path_on3"
  "fig7_shortest_path_on3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_shortest_path_on3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
