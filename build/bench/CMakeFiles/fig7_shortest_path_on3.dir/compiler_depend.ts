# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_shortest_path_on3.
