# Empty dependencies file for host_scaling.
# This may be replaced when dependencies are built.
