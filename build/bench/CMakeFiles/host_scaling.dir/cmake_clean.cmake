file(REMOVE_RECURSE
  "CMakeFiles/host_scaling.dir/host_scaling.cpp.o"
  "CMakeFiles/host_scaling.dir/host_scaling.cpp.o.d"
  "host_scaling"
  "host_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
