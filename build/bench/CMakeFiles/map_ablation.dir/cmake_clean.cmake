file(REMOVE_RECURSE
  "CMakeFiles/map_ablation.dir/map_ablation.cpp.o"
  "CMakeFiles/map_ablation.dir/map_ablation.cpp.o.d"
  "map_ablation"
  "map_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
