# Empty compiler generated dependencies file for map_ablation.
# This may be replaced when dependencies are built.
