# Empty compiler generated dependencies file for ucc.
# This may be replaced when dependencies are built.
