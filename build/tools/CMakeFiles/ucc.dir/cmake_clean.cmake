file(REMOVE_RECURSE
  "CMakeFiles/ucc.dir/ucc.cpp.o"
  "CMakeFiles/ucc.dir/ucc.cpp.o.d"
  "ucc"
  "ucc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
