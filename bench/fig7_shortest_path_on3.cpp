// Experiment E2 — Figure 7: all-pairs shortest path with O(N^3)
// parallelism (log-round min-plus squaring), UC vs C*.
//
// Paper shape: both curves nearly flat and close together over N=5..25
// (the N^3 VP set stays within the machine until N^3 > 16K), and markedly
// *below* the O(N^2) algorithm's time at equal N (fewer relaxation
// rounds: ceil(log2 N) instead of N).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "cstar/paths.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

int main() {
  using namespace uc;
  bench::header("Fig 7: shortest path, O(N^3) parallelism, UC vs C*",
                "     N   UC sim(s)   C* sim(s)   ratio   O(N^2) sim(s)  "
                "agree");

  for (std::int64_t n : {5, 10, 15, 20, 25}) {
    auto program = Program::compile("fig5.uc", papers::shortest_path_on3(n));
    auto uc_result = program.run();

    auto init_src = papers::shortest_path_on3(n);
    init_src = init_src.substr(0, init_src.find("index_set L")) +
               "void main() { init(); }\n";
    auto graph_result = Program::compile("init.uc", init_src).run();
    std::vector<std::int64_t> graph;
    for (auto& v : graph_result.global_array("d")) graph.push_back(v.as_int());

    cm::Machine machine;
    auto cstar_dist = cstar::shortest_path_on3(machine, n, graph);

    // The same problem via the O(N^2) algorithm, for the crossover story.
    auto on2 = Program::compile("fig4.uc", papers::shortest_path_on2(n)).run();

    bool agree = true;
    for (std::int64_t i = 0; i < n && agree; ++i) {
      for (std::int64_t j = 0; j < n && agree; ++j) {
        agree = uc_result.global_element("d", {i, j}).as_int() ==
                cstar_dist[static_cast<std::size_t>(i * n + j)];
      }
    }

    const double uc_sim = bench::sim_seconds(uc_result.stats());
    const double cstar_sim = bench::sim_seconds(machine.stats());
    std::printf("%6lld %11.5f %11.5f %7.2f %15.5f  %s\n",
                static_cast<long long>(n), uc_sim, cstar_sim,
                uc_sim / cstar_sim, bench::sim_seconds(on2.stats()),
                agree ? "yes" : "NO!");
  }
  std::printf(
      "\nshape check: UC tracks C*; O(N^3) beats O(N^2) at these sizes "
      "(log N vs N rounds) exactly as Figs 6/7 show.\n");
  return 0;
}
