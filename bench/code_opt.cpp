// Experiment E4b — the §4 "code optimisations" (constant folding, common
// subexpression detection): same results, fewer elementary operations per
// SIMD instruction.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "support/str.hpp"
#include "uc/uc.hpp"

namespace {

// A deliberately expression-heavy stencil: the wavefront neighbour
// subscripts repeat `i - 1` and `j - 1`, and the kernel reuses whole
// terms, exactly what CSE collapses.
std::string kernel(std::int64_t n, std::int64_t rounds) {
  return uc::support::format(
      "#define N %lld\n"
      "index_set I:i = {1..N-2}, J:j = I;\n"
      "index_set T:t = {1..%lld};\n"
      "int u[N][N], v[N][N];\n"
      "void main() {\n"
      "  par (I, J) u[i][j] = i * (2 + 3) + j * (10 - 3);\n"
      "  seq (T)\n"
      "    par (I, J)\n"
      "      v[i][j] = (u[i-1][j-1] + u[i-1][j-1]) * (4 - 2)\n"
      "              + (u[i-1][j] + u[i][j-1]) * (u[i-1][j] + u[i][j-1])\n"
      "              + (3 * 3 - 2 * 4) * u[i-1][j-1]\n"
      "              + (1 + 1 + 1 + 1 - 4) * u[i][j-1];\n"
      "}\n",
      static_cast<long long>(n), static_cast<long long>(rounds));
}

}  // namespace

int main() {
  using namespace uc;
  bench::header(
      "Code optimisations (paper 4): constant folding + CSE",
      "config                          sim(s)      vs none   v[5][5]");

  const auto src = kernel(64, 16);
  struct Config {
    const char* name;
    bool fold;
    bool cse;
  };
  const Config configs[] = {
      {"no folding, no CSE", false, false},
      {"constant folding only", true, false},
      {"CSE only", false, true},
      {"folding + CSE (default)", true, true},
  };

  double baseline = 0;
  for (const auto& cfg : configs) {
    CompileOptions copts;
    copts.fold_constants = cfg.fold;
    vm::ExecOptions eopts;
    eopts.common_subexpression_elimination = cfg.cse;
    auto program = Program::compile("k.uc", src, copts);
    auto result = program.run({}, eopts);
    const double s = bench::sim_seconds(result.stats());
    if (baseline == 0) baseline = s;
    std::printf("%-28s %10.5f %10.2fx %9lld\n", cfg.name, s, baseline / s,
                static_cast<long long>(
                    result.global_element("v", {5, 5}).as_int()));
  }
  std::printf(
      "\nshape check: every configuration computes identical values; the "
      "optimisations only shave elementary operations per instruction.\n");
  return 0;
}
