// Experiment E7 — "measurements of the compiler": front-end and
// transform-pass throughput over the paper's programs (google-benchmark),
// plus the E9 conciseness table (UC vs emitted C*).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "codegen/cstar_emit.hpp"
#include "support/str.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"
#include "uclang/lexer.hpp"
#include "uclang/parser.hpp"
#include "xform/const_fold.hpp"
#include "xform/solve_lower.hpp"

namespace {

std::string corpus() {
  // Every paper program, concatenated lex/parse-only workload.
  std::string all;
  all += uc::papers::shortest_path_on2(32);
  all += uc::papers::shortest_path_on3(32);
  all += uc::papers::grid_shortest_path(32, 32, true);
  all += uc::papers::prefix_sums_star_par(64);
  all += uc::papers::ranksort(64);
  all += uc::papers::odd_even_sort(64);
  all += uc::papers::wavefront(32);
  all += uc::papers::histogram(64);
  return all;
}

void BM_Lex(benchmark::State& state) {
  const auto src = uc::papers::shortest_path_on3(32);
  for (auto _ : state) {
    uc::support::SourceFile file("bench.uc", src);
    uc::support::DiagnosticEngine diags(&file);
    uc::lang::Lexer lexer(file, diags);
    benchmark::DoNotOptimize(lexer.lex_all());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(src.size()) *
                          state.iterations());
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const auto src = uc::papers::shortest_path_on3(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(uc::lang::parse_only("bench.uc", src));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(src.size()) *
                          state.iterations());
}
BENCHMARK(BM_Parse);

void BM_FullFrontEnd(benchmark::State& state) {
  const auto src = uc::papers::shortest_path_on3(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(uc::lang::compile("bench.uc", src));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(src.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullFrontEnd);

void BM_CompileWithPasses(benchmark::State& state) {
  const auto src = uc::papers::wavefront(16);
  uc::CompileOptions opts;
  opts.lower_solve = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(uc::Program::compile("bench.uc", src, opts));
  }
}
BENCHMARK(BM_CompileWithPasses);

void BM_CstarEmission(benchmark::State& state) {
  auto program =
      uc::Program::compile("bench.uc", uc::papers::shortest_path_on2(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.to_cstar_source());
  }
}
BENCHMARK(BM_CstarEmission);

void BM_LexParseCorpus(benchmark::State& state) {
  const auto src = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uc::lang::parse_only("corpus.uc", src));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(src.size()) *
                          state.iterations());
}
BENCHMARK(BM_LexParseCorpus);

// E9: program conciseness, UC vs the C* the compiler emits (paper §5:
// "a UC program is more concise than an equivalent program written in
// CM Fortran"; the appendix contrasts UC's ~10 lines with C*'s ~25).
void report_conciseness() {
  struct Row {
    const char* name;
    std::string uc;
  };
  const Row rows[] = {
      {"shortest path O(N^2) (Fig 4 vs Fig 9)",
       uc::papers::shortest_path_on2(32)},
      {"shortest path O(N^3) (Fig 5 vs Fig 10)",
       uc::papers::shortest_path_on3(32)},
      {"grid obstacle (Fig 11)", uc::papers::grid_shortest_path(32, 32, true)},
      {"histogram (para 4)", uc::papers::histogram(32)},
  };
  std::printf("\n=== E9: conciseness, UC source vs emitted C* ===\n");
  std::printf("%-42s %9s %9s\n", "program", "UC lines", "C* lines");
  for (const auto& row : rows) {
    auto program = uc::Program::compile("p.uc", row.uc);
    std::printf("%-42s %9zu %9zu\n", row.name,
                uc::support::count_code_lines(row.uc),
                uc::support::count_code_lines(program.to_cstar_source()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_conciseness();
  return 0;
}
