// Experiment E8 — substrate characterisation: host throughput and
// simulated cost of the CM primitives every experiment above is built on
// (elementwise, NEWS shift, router gather, reduce, scan), across VP-set
// sizes spanning the 16K physical-processor boundary.
#include <benchmark/benchmark.h>

#include "cm/ops.hpp"

namespace {

using namespace uc::cm;

struct Rig {
  Machine machine;
  GeomId geom;
  FieldId a, b;

  explicit Rig(std::int64_t n, unsigned threads = 1)
      : machine(MachineOptions{CostModel{}, threads, 1}),
        geom(machine.create_geometry({n})),
        a(machine.allocate_field(geom, "a", ElemType::kInt)),
        b(machine.allocate_field(geom, "b", ElemType::kInt)) {
    auto& fa = machine.field(a);
    for (VpIndex vp = 0; vp < n; ++vp) fa.set(vp, from_int(vp));
    machine.field(b).fill(from_int(1));
  }
};

void BM_Elementwise(benchmark::State& state) {
  Rig rig(state.range(0));
  ContextStack ctx(&rig.machine.geometry(rig.geom));
  auto& fa = rig.machine.field(rig.a);
  for (auto _ : state) {
    elementwise(rig.machine, ctx, fa,
                [](VpIndex vp) { return from_int(vp * 3 + 1); });
  }
  state.counters["sim_cycles_per_op"] = static_cast<double>(
      rig.machine.stats().cycles / rig.machine.stats().vector_ops);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Elementwise)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_NewsShift(benchmark::State& state) {
  Rig rig(state.range(0));
  ContextStack ctx(&rig.machine.geometry(rig.geom));
  auto& fa = rig.machine.field(rig.a);
  auto& fb = rig.machine.field(rig.b);
  for (auto _ : state) {
    news_shift(rig.machine, ctx, fa, fb, 0, 1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NewsShift)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_RouterReversal(benchmark::State& state) {
  Rig rig(state.range(0));
  ContextStack ctx(&rig.machine.geometry(rig.geom));
  auto& fa = rig.machine.field(rig.a);
  auto& fb = rig.machine.field(rig.b);
  const auto n = state.range(0);
  for (auto _ : state) {
    router_get(rig.machine, ctx, fa, fb,
               [n](VpIndex vp) -> std::optional<VpIndex> {
                 return n - 1 - vp;
               });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RouterReversal)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_Reduce(benchmark::State& state) {
  Rig rig(state.range(0));
  ContextStack ctx(&rig.machine.geometry(rig.geom));
  auto& fa = rig.machine.field(rig.a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce(rig.machine, ctx, fa, ReduceOp::kAdd));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Reduce)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_Scan(benchmark::State& state) {
  Rig rig(state.range(0));
  ContextStack ctx(&rig.machine.geometry(rig.geom));
  auto& fa = rig.machine.field(rig.a);
  auto& fb = rig.machine.field(rig.b);
  for (auto _ : state) {
    scan(rig.machine, ctx, fa, fb, ReduceOp::kAdd);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Scan)->Arg(1024)->Arg(16384)->Arg(65536);

// The threaded host runtime: same elementwise sweep at 1 vs 4 host
// threads (identical simulated cost; host wall time is what varies).
void BM_ElementwiseThreaded(benchmark::State& state) {
  Rig rig(1 << 16, static_cast<unsigned>(state.range(0)));
  ContextStack ctx(&rig.machine.geometry(rig.geom));
  auto& fa = rig.machine.field(rig.a);
  for (auto _ : state) {
    elementwise(rig.machine, ctx, fa,
                [](VpIndex vp) { return from_int(vp * vp + 7); });
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_ElementwiseThreaded)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
