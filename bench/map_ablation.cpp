// Experiment E4 — the §4 claim: "The execution efficiency of some
// programs was improved by a factor of 10, simply by specifying an
// efficient mapping for the program data."
//
// Four kernels, each with and without its map section: shifted access
// (permute), reversal (permute), folded self-combination (fold) and
// replicated read (copy).  Results must be identical; only cost moves.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

namespace {

void row(const char* kernel, const std::string& plain_src,
         const std::string& mapped_src, const char* check_array) {
  using namespace uc;
  auto plain = Program::compile("plain.uc", plain_src).run();
  auto mapped = Program::compile("mapped.uc", mapped_src).run();
  bool agree = plain.global_array(check_array).size() ==
               mapped.global_array(check_array).size();
  if (agree) {
    auto a = plain.global_array(check_array);
    auto b = mapped.global_array(check_array);
    for (std::size_t k = 0; k < a.size() && agree; ++k) {
      agree = a[k].as_int() == b[k].as_int();
    }
  }
  const double plain_s = bench::sim_seconds(plain.stats());
  const double mapped_s = bench::sim_seconds(mapped.stats());
  std::printf("%-22s %11.5f %12.5f %8.1fx %9llu %9llu   %s\n", kernel,
              plain_s, mapped_s, plain_s / mapped_s,
              static_cast<unsigned long long>(plain.stats().router_messages),
              static_cast<unsigned long long>(mapped.stats().router_messages),
              agree ? "yes" : "NO!");
}

}  // namespace

int main() {
  using namespace uc;
  bench::header(
      "Map-section ablation (paper 4): default vs programmer mapping",
      "kernel                  default(s)    mapped(s)   speedup  "
      "rt_msgs  rt_msgs'  agree");

  const std::int64_t n = 256;
  const std::int64_t rounds = 32;
  // Shift-by-1 already rides the cheap NEWS grid, so the permute's win is
  // modest and needs enough rounds to amortise the relocation sweep — the
  // reversal/fold/copy kernels below are the router-bound cases where the
  // paper's "factor of 10" lives.
  row("shifted sum (permute)", papers::shifted_sum(n, 128, false),
      papers::shifted_sum(n, 128, true), "a");
  row("reversal (permute)", papers::reversal(n, rounds, false),
      papers::reversal(n, rounds, true), "a");
  row("fold combine (fold)", papers::fold_combine(n, rounds, false),
      papers::fold_combine(n, rounds, true), "out");
  row("row broadcast (copy)", papers::copy_broadcast(24, 12, false),
      papers::copy_broadcast(24, 12, true), "m");

  std::printf(
      "\nshape check: mappings keep results identical and cut simulated "
      "time by up to an order of magnitude (paper: \"improved by a factor "
      "of 10\").\n");
  return 0;
}
