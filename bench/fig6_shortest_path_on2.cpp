// Experiment E1 — Figure 6: all-pairs shortest path with O(N^2)
// parallelism, UC vs C*, elapsed (simulated) time vs problem size.
//
// Paper shape to reproduce: the UC curve tracks the C* curve closely
// (the compiler adds no significant overhead), both growing with N.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "cstar/paths.hpp"
#include "seqref/seqref.hpp"
#include "support/rng.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

int main() {
  using namespace uc;
  bench::header("Fig 6: shortest path, O(N^2) parallelism, UC vs C*",
                "     N   UC sim(s)   C* sim(s)   ratio   UC host(ms)  "
                "C* host(ms)  agree");

  for (std::int64_t n : {4, 8, 12, 16, 20, 24, 28, 32}) {
    // UC program (Fig 4), full pipeline: compile + run.
    bench::WallTimer uc_timer;
    auto program = Program::compile("fig4.uc", papers::shortest_path_on2(n));
    auto uc_result = program.run();
    const double uc_ms = uc_timer.elapsed_ms();

    // C* baseline (Appendix Fig 9) on the same simulated machine model.
    // Same graph: extract it from the UC run via an init-only program.
    auto init_src = papers::shortest_path_on2(n);
    init_src = init_src.substr(0, init_src.find("  seq (K)")) + "}\n";
    auto graph_result = Program::compile("init.uc", init_src).run();
    std::vector<std::int64_t> graph;
    for (auto& v : graph_result.global_array("d")) graph.push_back(v.as_int());

    bench::WallTimer cstar_timer;
    cm::Machine machine;
    auto cstar_dist = cstar::shortest_path_on2(machine, n, graph);
    const double cstar_ms = cstar_timer.elapsed_ms();

    bool agree = true;
    for (std::int64_t i = 0; i < n && agree; ++i) {
      for (std::int64_t j = 0; j < n && agree; ++j) {
        agree = uc_result.global_element("d", {i, j}).as_int() ==
                cstar_dist[static_cast<std::size_t>(i * n + j)];
      }
    }

    const double uc_sim = bench::sim_seconds(uc_result.stats());
    const double cstar_sim = bench::sim_seconds(machine.stats());
    std::printf("%6lld %11.5f %11.5f %7.2f %12.2f %12.2f  %s\n",
                static_cast<long long>(n), uc_sim, cstar_sim,
                uc_sim / cstar_sim, uc_ms, cstar_ms,
                agree ? "yes" : "NO!");
  }
  std::printf(
      "\nshape check: UC/C* ratio stays near 1 across N (paper: \"the "
      "performance of UC programs matches that of C*\").\n");
  return 0;
}
