// Experiment E5 — the §4 processor optimisation: the digit-count program
//
//   par (J) count[j] = $+(I st (samples[i]==j) 1);
//
// naively needs 10*N virtual processors (10 simultaneous reductions over N
// elements each); the compiler's analysis proves each sample contributes
// to at most one count, so N processors suffice.  We toggle the VM's
// implementation of that analysis and report the simulated cost.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

int main() {
  using namespace uc;
  bench::header(
      "Processor optimisation (paper 4): histogram VP allocation",
      "     N   naive sim(s)   optimised sim(s)   speedup   agree");

  for (std::int64_t n : {1024, 4096, 16384, 65536}) {
    auto program = Program::compile("hist.uc", papers::histogram(n));

    vm::ExecOptions naive;
    naive.processor_optimization = false;
    vm::ExecOptions optimised;
    optimised.processor_optimization = true;

    cm::MachineOptions machine;  // 16K processors: 10*N exceeds it quickly
    auto r_naive = program.run(machine, naive);
    auto r_opt = program.run(machine, optimised);

    bool agree = true;
    for (int d = 0; d < 10 && agree; ++d) {
      agree = r_naive.global_element("count", {d}).as_int() ==
              r_opt.global_element("count", {d}).as_int();
    }
    const double a = bench::sim_seconds(r_naive.stats());
    const double b = bench::sim_seconds(r_opt.stats());
    std::printf("%7lld %13.5f %18.5f %9.1fx   %s\n",
                static_cast<long long>(n), a, b, a / b,
                agree ? "yes" : "NO!");
  }
  std::printf(
      "\nshape check: the optimisation's benefit grows once 10*N exceeds "
      "the 16K physical processors (VP ratio 10x larger without it).\n");
  return 0;
}
