// VM engine comparison: tree-walk vs bytecode lane kernels vs fused
// bytecode kernels vs native compiled kernels on the paper workloads
// (Figs 6-8).  Each program runs a few times per engine on fresh
// simulated machines (best-of-N wall clock, to shrug off scheduler
// noise); we report host wall-clock and modeled cycles and fail (nonzero
// exit) if the engines disagree on output in any repetition, if walk and
// unfused bytecode disagree on cycles, or if fusion ever costs more
// modeled cycles than it saves.
//
//   vm_engine [--smoke] [--json=PATH] [--only=SUBSTR] [--rows=engines]
//
// --smoke shrinks the problem sizes (for CI); --json writes the rows as a
// JSON array (tools/bench.sh uses this to produce BENCH_vm.json).
// --only runs just the workloads whose name contains SUBSTR, and
// --rows=engines keeps only the engine-comparison rows (walk, bytecode,
// fused, native) — tools/ci.sh combines the two for its native
// performance gate.  Hosts without a working C++ toolchain skip the
// native rows with a loud notice instead of failing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "cm/fault.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

namespace {

struct Row {
  std::string program;
  std::string engine;
  double host_ms = 0.0;
  std::uint64_t cycles = 0;
  std::string output;
  bool skipped = false;  // native: no working toolchain at runtime
};

Row run_one(const std::string& name, const std::string& source,
            uc::vm::ExecEngine engine, bool fuse, int reps) {
  auto program = uc::Program::compile(name + ".uc", source);
  Row row;
  row.program = name;
  row.engine = engine == uc::vm::ExecEngine::kWalk     ? "walk"
               : engine == uc::vm::ExecEngine::kNative ? "bytecode-native"
               : fuse                                  ? "bytecode-fused"
                                                       : "bytecode";
  for (int r = 0; r < reps; ++r) {
    uc::cm::Machine machine;
    uc::vm::ExecOptions eopts;
    eopts.engine = engine;
    eopts.fuse = fuse;
    uc::bench::WallTimer timer;
    auto result = program.run_on(machine, eopts);
    const double ms = timer.elapsed_ms();
    if (engine == uc::vm::ExecEngine::kNative &&
        result.native_dispatches() == 0) {
      // Nothing ran natively — no toolchain, or every statement was
      // declined.  Mark the row skipped rather than reporting bytecode
      // timings under the native label.
      row.skipped = true;
      return row;
    }
    if (r == 0 || ms < row.host_ms) row.host_ms = ms;
    row.cycles = result.stats().cycles;
    row.output = result.output();
  }
  return row;
}

// Shard-scaling rows (docs/SHARDING.md): the fused bytecode engine with
// the VP set split across S shards, all on the same 4-thread host pool so
// the only variable is the shard count.  Sharding is a host-execution
// knob, so every row must keep the output byte-identical to — and charge
// exactly the same modeled cycles as — the shard-1 row; host_ms is the
// quantity of interest (it scales with the hardware threads actually
// available to the pool).
Row run_one_sharded(const std::string& name, const std::string& source,
                    unsigned shards, int reps) {
  auto program = uc::Program::compile(name + ".uc", source);
  Row row;
  row.program = name;
  row.engine = "bytecode-shard" + std::to_string(shards);
  for (int r = 0; r < reps; ++r) {
    uc::cm::MachineOptions mopts;
    mopts.host_threads = 4;
    mopts.shards = shards;
    uc::cm::Machine machine(mopts);
    uc::vm::ExecOptions eopts;
    eopts.engine = uc::vm::ExecEngine::kBytecode;
    eopts.fuse = true;
    uc::bench::WallTimer timer;
    auto result = program.run_on(machine, eopts);
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < row.host_ms) row.host_ms = ms;
    row.cycles = result.stats().cycles;
    row.output = result.output();
  }
  return row;
}

// Robustness-layer rows (docs/ROBUSTNESS.md).  "bytecode-ckpt" measures
// pure checkpointing overhead (fault-free, so output must still match);
// "bytecode-faulted" adds injected transient faults with recovery, whose
// extra retry/backoff cycles are the point of the row — it is excluded
// from the cycle-agreement check but must keep the output byte-identical.
Row run_one_robust(const std::string& name, const std::string& source,
                   bool with_faults, int reps) {
  auto program = uc::Program::compile(name + ".uc", source);
  Row row;
  row.program = name;
  row.engine = with_faults ? "bytecode-faulted" : "bytecode-ckpt";
  for (int r = 0; r < reps; ++r) {
    uc::cm::MachineOptions mopts;
    if (with_faults) {
      mopts.faults = uc::cm::parse_fault_spec(
          "memory:p=1e-4;router:p=1e-4;news:p=1e-4,seed=7");
    }
    uc::cm::Machine machine(mopts);
    uc::vm::ExecOptions eopts;
    eopts.engine = uc::vm::ExecEngine::kBytecode;
    eopts.fuse = false;  // overhead deltas are against the plain bytecode row
    eopts.checkpoint_every = 8;
    uc::bench::WallTimer timer;
    auto result = program.run_on(machine, eopts);
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < row.host_ms) row.host_ms = ms;
    row.cycles = result.stats().cycles;
    row.output = result.output();
  }
  return row;
}

// Durable-checkpoint row (docs/ROBUSTNESS.md "Durable checkpoints &
// resume"): the in-memory checkpoint row plus atomic snapshot persistence
// to a scratch directory at every capture.  Durability is host-side I/O
// only, so the row must charge exactly the same modeled cycles as
// "bytecode-ckpt" and keep the output byte-identical; its host_ms delta
// against that row is the encode + fsync + rename cost.
Row run_one_durable(const std::string& name, const std::string& source,
                    int reps) {
  auto program = uc::Program::compile(name + ".uc", source);
  Row row;
  row.program = name;
  row.engine = "bytecode-durable-ckpt";
  for (int r = 0; r < reps; ++r) {
    char dir_template[] = "/tmp/uc-bench-ckpt-XXXXXX";
    const char* dir = ::mkdtemp(dir_template);
    uc::cm::Machine machine;
    uc::vm::ExecOptions eopts;
    eopts.engine = uc::vm::ExecEngine::kBytecode;
    eopts.fuse = false;  // overhead deltas are against the plain bytecode row
    eopts.checkpoint_every = 8;
    if (dir != nullptr) eopts.checkpoint_dir = dir;
    uc::bench::WallTimer timer;
    auto result = program.run_on(machine, eopts);
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < row.host_ms) row.host_ms = ms;
    row.cycles = result.stats().cycles;
    row.output = result.output();
    if (dir != nullptr) std::filesystem::remove_all(dir);
  }
  return row;
}

// The bytecode engine with per-site profiling attached (docs/PROFILING.md):
// the row's delta against the plain bytecode row is the profiler's host
// overhead.  Cycles and output must not move at all.
Row run_one_profiled(const std::string& name, const std::string& source,
                     int reps) {
  auto program = uc::Program::compile(name + ".uc", source);
  Row row;
  row.program = name;
  row.engine = "bytecode-profiled";
  for (int r = 0; r < reps; ++r) {
    uc::ProfileOptions popts;
    popts.exec.engine = uc::vm::ExecEngine::kBytecode;
    popts.exec.fuse = false;  // must match the plain bytecode row exactly
    popts.join_static = false;  // time the attribution, not the analysis
    uc::bench::WallTimer timer;
    auto prof = program.profile(popts);
    const double ms = timer.elapsed_ms();
    if (r == 0 || ms < row.host_ms) row.host_ms = ms;
    row.cycles = prof.run.stats().cycles;
    row.output = prof.run.output();
  }
  return row;
}

// The mapping optimiser's output (docs/MAPPING.md): run `uc::optimize_map`
// once, then execute the rewritten program (or the original, when the search
// finds nothing better at this problem size) on the plain bytecode engine.
// The row must keep the output byte-identical to the bytecode row and never
// charge more modeled cycles — the optimiser's own replay validation promises
// exactly that.
Row run_one_optmap(const std::string& name, const std::string& source,
                   int reps) {
  uc::OptimizeMapOptions oopts;
  oopts.exec.engine = uc::vm::ExecEngine::kBytecode;
  oopts.exec.fuse = false;  // deltas are against the plain bytecode row
  auto opt = uc::optimize_map(name + ".uc", source, oopts);
  const std::string& best =
      opt.improved && opt.validated ? opt.optimized_source : source;
  Row row = run_one(name, best, uc::vm::ExecEngine::kBytecode,
                    /*fuse=*/false, reps);
  row.program = name;
  row.engine = "bytecode-optmap";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool engines_only = false;
  std::string json_path;
  std::string only;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[k], "--json=", 7) == 0) {
      json_path = argv[k] + 7;
    } else if (std::strncmp(argv[k], "--only=", 7) == 0) {
      only = argv[k] + 7;
    } else if (std::strcmp(argv[k], "--rows=engines") == 0) {
      engines_only = true;
    } else {
      std::fprintf(stderr, "vm_engine: unknown option '%s'\n", argv[k]);
      return 2;
    }
  }

  struct Workload {
    std::string name;
    std::string source;
  };
  const std::int64_t fig6_n = smoke ? 8 : 32;
  const std::int64_t fig7_n = smoke ? 8 : 24;
  const std::int64_t fig8_n = smoke ? 8 : 24;
  const std::vector<Workload> workloads = {
      {"fig6_shortest_path_on2", uc::papers::shortest_path_on2(fig6_n)},
      {"fig7_shortest_path_on3", uc::papers::shortest_path_on3(fig7_n)},
      {"fig8_grid_obstacle", uc::papers::grid_shortest_path(fig8_n, fig8_n)},
  };

  uc::bench::header("VM engines: tree walk vs bytecode lane kernels",
                    "program                    engine           host(ms)   "
                    "modeled cycles   speedup  agree");

  const int reps = smoke ? 1 : 3;
  std::vector<Row> rows;
  bool all_agree = true;
  bool native_skipped = false;
  for (const auto& w : workloads) {
    if (!only.empty() && w.name.find(only) == std::string::npos) continue;
    Row walk = run_one(w.name, w.source, uc::vm::ExecEngine::kWalk,
                       /*fuse=*/false, reps);
    Row byte = run_one(w.name, w.source, uc::vm::ExecEngine::kBytecode,
                       /*fuse=*/false, reps);
    Row fused = run_one(w.name, w.source, uc::vm::ExecEngine::kBytecode,
                        /*fuse=*/true, reps);
    // Native compiled kernels (docs/VM.md "Native tier"): must reproduce
    // the fused run bit for bit — same output, same modeled cycles — with
    // only host_ms allowed to move.
    Row native = run_one(w.name, w.source, uc::vm::ExecEngine::kNative,
                         /*fuse=*/true, reps);
    native_skipped = native_skipped || native.skipped;
    bool agree = walk.output == byte.output && walk.cycles == byte.cycles &&
                 fused.output == byte.output && fused.cycles <= byte.cycles &&
                 (native.skipped || (native.output == fused.output &&
                                     native.cycles == fused.cycles));
    const double speedup = byte.host_ms > 0 ? walk.host_ms / byte.host_ms : 0;
    const double fspeedup =
        fused.host_ms > 0 ? byte.host_ms / fused.host_ms : 0;
    std::printf("%-26s %-15s %10.2f %16llu %9s  %s\n", w.name.c_str(),
                "walk", walk.host_ms,
                static_cast<unsigned long long>(walk.cycles), "", "");
    std::printf("%-26s %-15s %10.2f %16llu %8.2fx  %s\n", w.name.c_str(),
                "bytecode", byte.host_ms,
                static_cast<unsigned long long>(byte.cycles), speedup, "");
    std::printf("%-26s %-15s %10.2f %16llu %8.2fx  %s\n", w.name.c_str(),
                "bytecode-fused", fused.host_ms,
                static_cast<unsigned long long>(fused.cycles), fspeedup, "");
    if (native.skipped) {
      std::printf("%-26s %-15s   (skipped: no native toolchain)\n",
                  w.name.c_str(), "bytecode-native");
    } else {
      const double nspeedup =
          native.host_ms > 0 ? fused.host_ms / native.host_ms : 0;
      std::printf("%-26s %-15s %10.2f %16llu %8.2fx  %s\n", w.name.c_str(),
                  "bytecode-native", native.host_ms,
                  static_cast<unsigned long long>(native.cycles), nspeedup,
                  "");
    }
    rows.push_back(walk);
    rows.push_back(byte);
    rows.push_back(fused);
    if (!native.skipped) rows.push_back(native);

    if (!engines_only) {
      Row prof = run_one_profiled(w.name, w.source, reps);
      Row ckpt =
          run_one_robust(w.name, w.source, /*with_faults=*/false, reps);
      Row durable = run_one_durable(w.name, w.source, reps);
      Row faulted =
          run_one_robust(w.name, w.source, /*with_faults=*/true, reps);
      Row optmap = run_one_optmap(w.name, w.source, reps);
      Row shard1 = run_one_sharded(w.name, w.source, 1, reps);
      Row shard2 = run_one_sharded(w.name, w.source, 2, reps);
      Row shard4 = run_one_sharded(w.name, w.source, 4, reps);
      // Checkpoint captures and fault recovery cost extra modeled cycles
      // by design, so those rows are held only to output equality.
      agree = agree && prof.output == byte.output &&
              prof.cycles == byte.cycles && ckpt.output == byte.output &&
              // Durable persistence is host-side I/O only: same modeled
              // cycles as the in-memory checkpoint row.
              durable.output == byte.output &&
              durable.cycles == ckpt.cycles &&
              faulted.output == byte.output && optmap.output == byte.output &&
              optmap.cycles <= byte.cycles &&
              // Sharding must be invisible in both output and modeled
              // cycles at every shard count.
              shard1.output == fused.output &&
              shard1.cycles == fused.cycles &&
              shard2.output == shard1.output &&
              shard2.cycles == shard1.cycles &&
              shard4.output == shard1.output &&
              shard4.cycles == shard1.cycles;
      std::printf("%-26s %-15s %10.2f %16llu %9s  %s\n", w.name.c_str(),
                  "+profile", prof.host_ms,
                  static_cast<unsigned long long>(prof.cycles), "", "");
      std::printf("%-26s %-15s %10.2f %16llu %9s  %s\n", w.name.c_str(),
                  "+ckpt", ckpt.host_ms,
                  static_cast<unsigned long long>(ckpt.cycles), "", "");
      std::printf("%-26s %-15s %10.2f %16llu %9s  %s\n", w.name.c_str(),
                  "+durable-ckpt", durable.host_ms,
                  static_cast<unsigned long long>(durable.cycles), "", "");
      std::printf("%-26s %-15s %10.2f %16llu %9s  %s\n", w.name.c_str(),
                  "+faults", faulted.host_ms,
                  static_cast<unsigned long long>(faulted.cycles), "", "");
      std::printf("%-26s %-15s %10.2f %16llu %9s  %s\n", w.name.c_str(),
                  "+optmap", optmap.host_ms,
                  static_cast<unsigned long long>(optmap.cycles), "", "");
      for (const Row* s : {&shard1, &shard2, &shard4}) {
        const double sspeedup =
            s->host_ms > 0 ? shard1.host_ms / s->host_ms : 0;
        std::printf("%-26s %-15s %10.2f %16llu %8.2fx  %s\n", w.name.c_str(),
                    s->engine.c_str(), s->host_ms,
                    static_cast<unsigned long long>(s->cycles), sspeedup, "");
      }
      rows.push_back(prof);
      rows.push_back(ckpt);
      rows.push_back(durable);
      rows.push_back(faulted);
      rows.push_back(optmap);
      rows.push_back(shard1);
      rows.push_back(shard2);
      rows.push_back(shard4);
    }
    if (!agree) std::printf("%-26s ENGINES DISAGREE\n", w.name.c_str());
    all_agree = all_agree && agree;
  }
  if (native_skipped) {
    std::fprintf(stderr,
                 "vm_engine: NOTICE: native tier unavailable on this host "
                 "(no working C++ toolchain); bytecode-native rows "
                 "skipped\n");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "vm_engine: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "  {\"program\": \"%s\", \"engine\": \"%s\", "
                   "\"host_ms\": %.3f, \"cycles\": %llu}%s\n",
                   rows[i].program.c_str(), rows[i].engine.c_str(),
                   rows[i].host_ms,
                   static_cast<unsigned long long>(rows[i].cycles),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

  if (!all_agree) {
    std::fprintf(stderr,
                 "vm_engine: engines disagree on output or modeled cycles\n");
    return 1;
  }
  return 0;
}
