// Experiment E6 — §3.6: "the use of *par is more efficient than *solve as
// the programmer need not save redundant intermediate states".  Three
// expressions of all-pairs shortest path: the hand-refined seq/par
// program, the declarative *solve, and the compiler's source-level
// lowering of a solve (wavefront) next to the VM's built-in method.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "support/str.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

namespace {

// A ring graph (diameter N-1) so both expressions need the full
// ceil(log2 N) min-plus rounds: with an easy random graph *solve would
// reach its fixed point early and win on rounds, hiding the state-saving
// overhead the paper's comparison is about.
std::string ring_sp(std::int64_t n, bool star_solve) {
  std::string src = uc::support::format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "index_set L:l = {0..%lld};\n"
      "int d[N][N];\n"
      "void init() {\n"
      "  par (I, J) st (i==j) d[i][j] = 0;\n"
      "    others d[i][j] = (j == (i+1) %% N) ? 1 : N + N;\n"
      "}\n",
      static_cast<long long>(n),
      static_cast<long long>(
          (n <= 1 ? 1 : 64 - __builtin_clzll(static_cast<unsigned long long>(
                                 n - 1))) -
          1));
  if (star_solve) {
    src +=
        "void main() {\n"
        "  init();\n"
        "  *solve (I, J) d[i][j] = $<(K; d[i][k] + d[k][j]);\n"
        "}\n";
  } else {
    src +=
        "void main() {\n"
        "  init();\n"
        "  seq (L) par (I, J) d[i][j] = $<(K; d[i][k] + d[k][j]);\n"
        "}\n";
  }
  return src;
}

}  // namespace

int main() {
  using namespace uc;
  bench::header(
      "solve refinement ladder (paper 3.6), ring graph (diameter N-1)",
      "     N   seq/par sim(s)   *solve sim(s)   overhead");

  for (std::int64_t n : {8, 16, 24, 32}) {
    auto refined = Program::compile("ring.uc", ring_sp(n, false)).run();
    auto declarative = Program::compile("ring.uc", ring_sp(n, true)).run();
    bool agree = true;
    for (std::int64_t i = 0; i < n && agree; ++i) {
      for (std::int64_t j = 0; j < n && agree; ++j) {
        agree = refined.global_element("d", {i, j}).as_int() ==
                declarative.global_element("d", {i, j}).as_int();
      }
    }
    const double a = bench::sim_seconds(refined.stats());
    const double b = bench::sim_seconds(declarative.stats());
    std::printf("%6lld %16.5f %15.5f %9.2fx  %s\n",
                static_cast<long long>(n), a, b, b / a,
                agree ? "" : "DISAGREE!");
  }

  bench::header(
      "solve implementations: VM built-in vs source-level lowering "
      "(wavefront)",
      "     N   built-in sim(s)   lowered sim(s)");
  for (std::int64_t n : {8, 16, 32}) {
    auto builtin = Program::compile("w.uc", papers::wavefront(n)).run();
    CompileOptions lower;
    lower.lower_solve = true;
    auto lowered =
        Program::compile("w.uc", papers::wavefront(n), lower).run();
    std::printf("%6lld %17.5f %15.5f\n", static_cast<long long>(n),
                bench::sim_seconds(builtin.stats()),
                bench::sim_seconds(lowered.stats()));
  }
  std::printf(
      "\nshape check: *solve always costs more than the refined *par/seq "
      "form — the price of automatic fixed-point detection.\n");
  return 0;
}
