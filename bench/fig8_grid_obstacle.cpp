// Experiment E3 — Figure 8: grid shortest path with a (stationary)
// obstacle.  The paper compares the UC program on a 16K CM against the
// same algorithm in sequential C on the Sun-4 front end, with and without
// -O.
//
// Paper shape: both sequential curves climb steeply with the number of
// rows (per-sweep work grows as rows^2 and the sweep count grows with the
// path length), while the parallel UC curve stays nearly flat as long as
// rows*cols <= 16K, because every cell updates simultaneously.  The -O
// line sits a constant factor below the plain one.
//
// Substitution note (DESIGN.md): the Sun-4 is modelled as the simulated
// front end; `-O` is modelled as a 3x smaller per-operation cost, which is
// the typical effect the flag had on this kind of pointer-free loop code.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "seqref/seqref.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"
#include "uclang/symbols.hpp"

int main() {
  using namespace uc;
  const cm::CostModel model;
  bench::header(
      "Fig 8: grid shortest path with obstacle — sequential C vs UC on CM",
      "  rows   seq C(s)   seq C -O(s)   UC on CM(s)   seq/UC   agree");

  for (std::int64_t rows : {8, 16, 24, 32, 40, 48, 56, 64}) {
    const auto cols = rows;
    auto wall = seqref::paper_obstacle(rows, cols);

    // Sequential baselines: the same iterative relaxation, one CPU.
    std::uint64_t seq_ops = 0;
    auto seq_dist = seqref::grid_relax_sequential(rows, cols, wall,
                                                  lang::kUcInf, &seq_ops);
    // Plain compile: ~3 machine cycles per elementary op; -O: ~1.
    const double seq_s =
        model.cycles_to_seconds(seq_ops * 3 * model.frontend_op);
    const double seq_opt_s =
        model.cycles_to_seconds(seq_ops * 1 * model.frontend_op);

    // Parallel UC program (Fig 11).
    auto program = Program::compile(
        "grid.uc", papers::grid_shortest_path(rows, cols, true));
    auto result = program.run();
    const double uc_s = bench::sim_seconds(result.stats(), model);

    bool agree = true;
    for (std::int64_t idx = 0; idx < rows * cols && agree; ++idx) {
      const auto i = idx / cols;
      const auto j = idx % cols;
      const auto got = result.global_element("d", {i, j}).as_int();
      if (wall[static_cast<std::size_t>(idx)] != 0) {
        agree = got == -2;
      } else {
        agree = got == seq_dist[static_cast<std::size_t>(idx)];
      }
    }

    std::printf("%6lld %10.4f %13.4f %13.4f %8.1f   %s\n",
                static_cast<long long>(rows), seq_s, seq_opt_s, uc_s,
                seq_s / uc_s, agree ? "yes" : "NO!");
  }
  std::printf(
      "\nshape check: sequential time climbs ~cubically with rows while "
      "the CM curve stays nearly flat below 16K cells — the Fig 8 "
      "separation (paper: ~40s vs a few seconds at 120 rows).\n");
  return 0;
}
