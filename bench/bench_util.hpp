// Shared helpers for the experiment harnesses: wall-clock timing and the
// table format every fig/table binary prints (EXPERIMENTS.md quotes these
// tables verbatim).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "cm/cost.hpp"

namespace uc::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline double sim_seconds(const cm::CostStats& stats,
                          const cm::CostModel& model = {}) {
  return model.cycles_to_seconds(stats.cycles);
}

inline void header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace uc::bench
