// Host-runtime characterisation: the thread pool that stands in for the
// CM's processor array must change *wall-clock* time only — simulated
// cycles, results and output are bit-identical for any thread count.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

int main() {
  using namespace uc;
  bench::header(
      "Threaded data-parallel host runtime (VM level)",
      "threads   host(ms)   sim cycles     d[0][1]   identical");

  auto program =
      Program::compile("sp.uc", papers::shortest_path_on2(48, 11));
  std::uint64_t ref_cycles = 0;
  std::int64_t ref_value = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    cm::MachineOptions mopts;
    mopts.host_threads = threads;
    bench::WallTimer timer;
    auto result = program.run(mopts);
    const double ms = timer.elapsed_ms();
    const auto cycles = result.stats().cycles;
    const auto value = result.global_element("d", {0, 1}).as_int();
    if (threads == 1) {
      ref_cycles = cycles;
      ref_value = value;
    }
    std::printf("%7u %10.2f %12llu %11lld   %s\n", threads, ms,
                static_cast<unsigned long long>(cycles),
                static_cast<long long>(value),
                cycles == ref_cycles && value == ref_value ? "yes" : "NO!");
  }
  std::printf(
      "\nshape check: simulated cycles and results are independent of the "
      "host thread count (determinism contract); wall time varies with "
      "available cores.\n");
  return 0;
}
