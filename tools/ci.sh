#!/usr/bin/env bash
# Tier-1 verification, plain and under ASan/UBSan/TSan.
#
#   tools/ci.sh          all configurations + Release bench smoke
#   tools/ci.sh plain    plain RelWithDebInfo build + ctest only
#   tools/ci.sh asan     ASan/UBSan build + ctest only
#   tools/ci.sh tsan     ThreadSanitizer build + concurrency suites
#   tools/ci.sh bench    Release build + vm_engine --smoke only
#
# The asan configuration re-runs the engine parity suite explicitly (the
# bytecode/walk differential tests) so a parity regression under the
# sanitizers fails loudly even when filtering.  Build trees go to build/
# (plain), build-asan/ (sanitized) and build-release/ (bench) under the
# repository root.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$root" "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

# Profiling smoke on the paper workloads (docs/PROFILING.md): a profiled
# run must leave the program output bit-identical, and the hot-site table
# must account for every modeled cycle (no ** MISMATCH ** marker).
run_profile_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local tmp; tmp="$(mktemp -d)"
  for prog in fig6_shortest_path_on2 fig7_shortest_path_on3 \
              fig8_grid_obstacle; do
    local src="$root/programs/$prog.uc"
    "$ucc" run "$src" >"$tmp/off.txt"
    "$ucc" run "$src" --profile >"$tmp/on.txt" 2>/dev/null
    cmp "$tmp/off.txt" "$tmp/on.txt" || {
      echo "ci.sh: profiling changed the output of $prog" >&2; exit 1; }
    "$ucc" profile "$src" >"$tmp/table.txt"
    grep -q "sum of sites" "$tmp/table.txt" || {
      echo "ci.sh: no profile table for $prog" >&2; exit 1; }
    if grep -q "MISMATCH" "$tmp/table.txt"; then
      echo "ci.sh: per-site cycles do not sum to the aggregate for $prog" >&2
      exit 1
    fi
  done
  rm -rf "$tmp"
}

# Fusion parity smoke (docs/VM.md "Fusion"): --fuse=on (the bytecode
# default) must leave program output byte-identical to --fuse=off on the
# paper workloads — including under injected faults with checkpointing,
# where a fused group replays as one transactional unit.
run_fused_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local faults="memory:p=1e-3;router:p=1e-3;news:p=1e-3,seed=7"
  local tmp; tmp="$(mktemp -d)"
  for prog in fig6_shortest_path_on2 fig7_shortest_path_on3 \
              fig8_grid_obstacle; do
    local src="$root/programs/$prog.uc"
    "$ucc" run "$src" --fuse=off >"$tmp/off.txt"
    "$ucc" run "$src" --fuse=on >"$tmp/on.txt"
    cmp "$tmp/off.txt" "$tmp/on.txt" || {
      echo "ci.sh: fusion changed the output of $prog" >&2; exit 1; }
    "$ucc" run "$src" --fuse=off --faults="$faults" \
        --checkpoint-every=8 >"$tmp/fault_off.txt"
    "$ucc" run "$src" --fuse=on --faults="$faults" \
        --checkpoint-every=8 >"$tmp/fault_on.txt"
    cmp "$tmp/fault_off.txt" "$tmp/fault_on.txt" || {
      echo "ci.sh: fusion changed the faulted output of $prog" >&2; exit 1; }
  done
  rm -rf "$tmp"
}

# Mapping-optimiser smoke (docs/MAPPING.md): `ucc optimize-map` on the
# Fig 6 workload must find a validated mapping — the rewritten program's
# replay must be bit-identical in output and strictly cheaper in modeled
# cycles — and the emitted program must reproduce both when run standalone.
run_optmap_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local src="$root/programs/fig6_shortest_path_on2.uc"
  local tmp; tmp="$(mktemp -d)"
  "$ucc" optimize-map "$src" --emit="$tmp/fig6_opt.uc" >"$tmp/report.txt"
  grep -q "output bit-identical" "$tmp/report.txt" || {
    echo "ci.sh: optimize-map found no replay-validated mapping for fig6" >&2
    exit 1; }
  "$ucc" run "$src" --stats >"$tmp/base.txt" 2>"$tmp/base_stats.txt"
  "$ucc" run "$tmp/fig6_opt.uc" --stats >"$tmp/opt.txt" 2>"$tmp/opt_stats.txt"
  cmp "$tmp/base.txt" "$tmp/opt.txt" || {
    echo "ci.sh: optimize-map changed the output of fig6" >&2; exit 1; }
  local base_cycles opt_cycles
  base_cycles="$(sed -n 's/^cycles=\([0-9]*\).*/\1/p' "$tmp/base_stats.txt")"
  opt_cycles="$(sed -n 's/^cycles=\([0-9]*\).*/\1/p' "$tmp/opt_stats.txt")"
  [ -n "$base_cycles" ] && [ -n "$opt_cycles" ] || {
    echo "ci.sh: could not read modeled cycles from --stats" >&2; exit 1; }
  [ "$opt_cycles" -lt "$base_cycles" ] || {
    echo "ci.sh: optimized fig6 charged $opt_cycles cycles," \
         "baseline $base_cycles — no improvement" >&2
    exit 1; }
  rm -rf "$tmp"
}

# Fault-injection smoke (docs/ROBUSTNESS.md): injected transient faults
# with checkpointing enabled must leave program output byte-identical —
# recovery costs cycles, never correctness — and the run must actually
# draw faults (a vacuous differential passes nothing).
run_fault_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local faults="memory:p=1e-3;router:p=1e-3;news:p=1e-3,seed=7"
  local tmp; tmp="$(mktemp -d)"
  for prog in fig6_shortest_path_on2 fig7_shortest_path_on3 \
              fig8_grid_obstacle; do
    local src="$root/programs/$prog.uc"
    "$ucc" run "$src" >"$tmp/clean.txt"
    "$ucc" run "$src" --faults="$faults" --checkpoint-every=8 \
        --stats >"$tmp/faulted.txt" 2>"$tmp/stats.txt"
    cmp "$tmp/clean.txt" "$tmp/faulted.txt" || {
      echo "ci.sh: injected faults changed the output of $prog" >&2; exit 1; }
    grep -q "faults=" "$tmp/stats.txt" || {
      echo "ci.sh: $prog drew no faults under injection" >&2; exit 1; }
  done
  rm -rf "$tmp"
}

# Durable-checkpoint soak smoke (docs/ROBUSTNESS.md "Durable checkpoints
# & resume"): one randomized SIGKILL + --resume round per configuration,
# including a forced corrupt-newest-generation fallback, asserting the
# resumed output and modeled cycles are bit-identical to an uninterrupted
# run.  tools/soak.sh with default knobs is the long-form version.
run_soak_smoke() {
  local dir="$1"; shift
  BUILD_DIR="$dir" SOAK_KILLS=1 "$@" "$root/tools/soak.sh"
}

run_asan() {
  run_suite "$root/build-asan" -DUC_SANITIZE="address;undefined"
  # Engine parity under the sanitizers: every shipped program, walk vs
  # bytecode (byte-identical output and modeled cycles) vs bytecode-fused
  # (byte-identical output, cycles never above unfused).
  "$root/build-asan/tests/ucvm/test_ucvm" \
      --gtest_filter='EngineParity*:ShardParity*'
  run_profile_smoke "$root/build-asan"
  run_fused_smoke "$root/build-asan"
  run_fault_smoke "$root/build-asan"
  run_optmap_smoke "$root/build-asan"
  # Bounded under the sanitizers: one program, unsharded, one kill.
  run_soak_smoke "$root/build-asan" \
      env SOAK_PROGS=fig6_shortest_path_on2 SOAK_SHARDS=1
}

# ThreadSanitizer lane (docs/SHARDING.md): sharded execution hands each
# shard's block to its own pool worker, so the pool and the sharded parity
# suites run under TSan.  The full ctest tier under TSan is slow; this lane
# focuses on the suites that actually fork and join threads: the cm pool /
# shard / ops / machine tests and the engine + shard differential suites,
# which run every paper program through the sharded dispatch paths.
run_tsan() {
  cmake -B "$root/build-tsan" -S "$root" -DUC_SANITIZE="thread"
  cmake --build "$root/build-tsan" -j
  "$root/build-tsan/tests/cm/test_cm" \
      --gtest_filter='ThreadPool*:Threads/*:PoolShards*:Shard*:ShiftExchange*:MachineShards*:Machine*:Ops*'
  "$root/build-tsan/tests/ucvm/test_ucvm" \
      --gtest_filter='ShardParity*:EngineParity*'
}

run_bench_smoke() {
  cmake -B "$root/build-release" -S "$root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$root/build-release" -j --target vm_engine
  # vm_engine exits nonzero if any engine disagrees on output, if walk and
  # unfused bytecode disagree on cycles, or if the fused rows cost more
  # modeled cycles than unfused on any of fig6/7/8.
  "$root/build-release/bench/vm_engine" --smoke
}

case "$mode" in
  plain)
    run_suite "$root/build"
    run_profile_smoke "$root/build"
    run_fused_smoke "$root/build"
    run_fault_smoke "$root/build"
    run_optmap_smoke "$root/build"
    run_soak_smoke "$root/build"
    ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  bench) run_bench_smoke ;;
  all)
    run_suite "$root/build"
    run_profile_smoke "$root/build"
    run_fused_smoke "$root/build"
    run_fault_smoke "$root/build"
    run_optmap_smoke "$root/build"
    run_soak_smoke "$root/build"
    run_asan
    run_tsan
    run_bench_smoke
    ;;
  *)
    echo "usage: tools/ci.sh [plain|asan|tsan|bench|all]" >&2
    exit 2
    ;;
esac
