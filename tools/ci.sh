#!/usr/bin/env bash
# Tier-1 verification, plain and under ASan/UBSan.
#
#   tools/ci.sh          both configurations
#   tools/ci.sh plain    plain RelWithDebInfo build + ctest only
#   tools/ci.sh asan     sanitized build + ctest only
#
# Build trees go to build/ (plain) and build-asan/ (sanitized) under the
# repository root.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$root" "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

case "$mode" in
  plain) run_suite "$root/build" ;;
  asan)  run_suite "$root/build-asan" -DUC_SANITIZE="address;undefined" ;;
  all)
    run_suite "$root/build"
    run_suite "$root/build-asan" -DUC_SANITIZE="address;undefined"
    ;;
  *)
    echo "usage: tools/ci.sh [plain|asan|all]" >&2
    exit 2
    ;;
esac
