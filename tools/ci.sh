#!/usr/bin/env bash
# Tier-1 verification, plain and under ASan/UBSan/TSan.
#
#   tools/ci.sh          all configurations + Release bench smoke
#   tools/ci.sh plain    plain RelWithDebInfo build + ctest only
#   tools/ci.sh asan     ASan/UBSan build + ctest only
#   tools/ci.sh tsan     ThreadSanitizer build + concurrency suites
#   tools/ci.sh bench    Release build + vm_engine --smoke only
#   tools/ci.sh native   Release build + native-tier fig8 perf gate only
#
# The asan configuration re-runs the engine parity suite explicitly (the
# bytecode/walk differential tests) so a parity regression under the
# sanitizers fails loudly even when filtering.  Build trees go to build/
# (plain), build-asan/ (sanitized) and build-release/ (bench) under the
# repository root.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$root" "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

# Profiling smoke on the paper workloads (docs/PROFILING.md): a profiled
# run must leave the program output bit-identical, and the hot-site table
# must account for every modeled cycle (no ** MISMATCH ** marker).
run_profile_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local tmp; tmp="$(mktemp -d)"
  for prog in fig6_shortest_path_on2 fig7_shortest_path_on3 \
              fig8_grid_obstacle; do
    local src="$root/programs/$prog.uc"
    "$ucc" run "$src" >"$tmp/off.txt"
    "$ucc" run "$src" --profile >"$tmp/on.txt" 2>/dev/null
    cmp "$tmp/off.txt" "$tmp/on.txt" || {
      echo "ci.sh: profiling changed the output of $prog" >&2; exit 1; }
    "$ucc" profile "$src" >"$tmp/table.txt"
    grep -q "sum of sites" "$tmp/table.txt" || {
      echo "ci.sh: no profile table for $prog" >&2; exit 1; }
    if grep -q "MISMATCH" "$tmp/table.txt"; then
      echo "ci.sh: per-site cycles do not sum to the aggregate for $prog" >&2
      exit 1
    fi
  done
  rm -rf "$tmp"
}

# Fusion parity smoke (docs/VM.md "Fusion"): --fuse=on (the bytecode
# default) must leave program output byte-identical to --fuse=off on the
# paper workloads — including under injected faults with checkpointing,
# where a fused group replays as one transactional unit.
run_fused_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local faults="memory:p=1e-3;router:p=1e-3;news:p=1e-3,seed=7"
  local tmp; tmp="$(mktemp -d)"
  for prog in fig6_shortest_path_on2 fig7_shortest_path_on3 \
              fig8_grid_obstacle; do
    local src="$root/programs/$prog.uc"
    "$ucc" run "$src" --fuse=off >"$tmp/off.txt"
    "$ucc" run "$src" --fuse=on >"$tmp/on.txt"
    cmp "$tmp/off.txt" "$tmp/on.txt" || {
      echo "ci.sh: fusion changed the output of $prog" >&2; exit 1; }
    "$ucc" run "$src" --fuse=off --faults="$faults" \
        --checkpoint-every=8 >"$tmp/fault_off.txt"
    "$ucc" run "$src" --fuse=on --faults="$faults" \
        --checkpoint-every=8 >"$tmp/fault_on.txt"
    cmp "$tmp/fault_off.txt" "$tmp/fault_on.txt" || {
      echo "ci.sh: fusion changed the faulted output of $prog" >&2; exit 1; }
  done
  rm -rf "$tmp"
}

# Mapping-optimiser smoke (docs/MAPPING.md): `ucc optimize-map` on the
# Fig 6 workload must find a validated mapping — the rewritten program's
# replay must be bit-identical in output and strictly cheaper in modeled
# cycles — and the emitted program must reproduce both when run standalone.
run_optmap_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local src="$root/programs/fig6_shortest_path_on2.uc"
  local tmp; tmp="$(mktemp -d)"
  "$ucc" optimize-map "$src" --emit="$tmp/fig6_opt.uc" >"$tmp/report.txt"
  grep -q "output bit-identical" "$tmp/report.txt" || {
    echo "ci.sh: optimize-map found no replay-validated mapping for fig6" >&2
    exit 1; }
  "$ucc" run "$src" --stats >"$tmp/base.txt" 2>"$tmp/base_stats.txt"
  "$ucc" run "$tmp/fig6_opt.uc" --stats >"$tmp/opt.txt" 2>"$tmp/opt_stats.txt"
  cmp "$tmp/base.txt" "$tmp/opt.txt" || {
    echo "ci.sh: optimize-map changed the output of fig6" >&2; exit 1; }
  local base_cycles opt_cycles
  base_cycles="$(sed -n 's/^cycles=\([0-9]*\).*/\1/p' "$tmp/base_stats.txt")"
  opt_cycles="$(sed -n 's/^cycles=\([0-9]*\).*/\1/p' "$tmp/opt_stats.txt")"
  [ -n "$base_cycles" ] && [ -n "$opt_cycles" ] || {
    echo "ci.sh: could not read modeled cycles from --stats" >&2; exit 1; }
  [ "$opt_cycles" -lt "$base_cycles" ] || {
    echo "ci.sh: optimized fig6 charged $opt_cycles cycles," \
         "baseline $base_cycles — no improvement" >&2
    exit 1; }
  rm -rf "$tmp"
}

# Fault-injection smoke (docs/ROBUSTNESS.md): injected transient faults
# with checkpointing enabled must leave program output byte-identical —
# recovery costs cycles, never correctness — and the run must actually
# draw faults (a vacuous differential passes nothing).
run_fault_smoke() {
  local dir="$1"
  local ucc="$dir/tools/ucc"
  local faults="memory:p=1e-3;router:p=1e-3;news:p=1e-3,seed=7"
  local tmp; tmp="$(mktemp -d)"
  for prog in fig6_shortest_path_on2 fig7_shortest_path_on3 \
              fig8_grid_obstacle; do
    local src="$root/programs/$prog.uc"
    "$ucc" run "$src" >"$tmp/clean.txt"
    "$ucc" run "$src" --faults="$faults" --checkpoint-every=8 \
        --stats >"$tmp/faulted.txt" 2>"$tmp/stats.txt"
    cmp "$tmp/clean.txt" "$tmp/faulted.txt" || {
      echo "ci.sh: injected faults changed the output of $prog" >&2; exit 1; }
    grep -q "faults=" "$tmp/stats.txt" || {
      echo "ci.sh: $prog drew no faults under injection" >&2; exit 1; }
  done
  rm -rf "$tmp"
}

# Durable-checkpoint soak smoke (docs/ROBUSTNESS.md "Durable checkpoints
# & resume"): one randomized SIGKILL + --resume round per configuration,
# including a forced corrupt-newest-generation fallback, asserting the
# resumed output and modeled cycles are bit-identical to an uninterrupted
# run.  tools/soak.sh with default knobs is the long-form version.
run_soak_smoke() {
  local dir="$1"; shift
  BUILD_DIR="$dir" SOAK_KILLS=1 "$@" "$root/tools/soak.sh"
}

run_asan() {
  run_suite "$root/build-asan" -DUC_SANITIZE="address;undefined"
  # Engine parity under the sanitizers: every shipped program, walk vs
  # bytecode (byte-identical output and modeled cycles) vs bytecode-fused
  # (byte-identical output, cycles never above unfused).
  "$root/build-asan/tests/ucvm/test_ucvm" \
      --gtest_filter='EngineParity*:ShardParity*'
  run_profile_smoke "$root/build-asan"
  run_fused_smoke "$root/build-asan"
  run_fault_smoke "$root/build-asan"
  run_optmap_smoke "$root/build-asan"
  # Bounded under the sanitizers: one program, unsharded, one kill.
  run_soak_smoke "$root/build-asan" \
      env SOAK_PROGS=fig6_shortest_path_on2 SOAK_SHARDS=1
}

# ThreadSanitizer lane (docs/SHARDING.md): sharded execution hands each
# shard's block to its own pool worker, so the pool and the sharded parity
# suites run under TSan.  The full ctest tier under TSan is slow; this lane
# focuses on the suites that actually fork and join threads: the cm pool /
# shard / ops / machine tests and the engine + shard differential suites,
# which run every paper program through the sharded dispatch paths.
run_tsan() {
  cmake -B "$root/build-tsan" -S "$root" -DUC_SANITIZE="thread"
  cmake --build "$root/build-tsan" -j
  "$root/build-tsan/tests/cm/test_cm" \
      --gtest_filter='ThreadPool*:Threads/*:PoolShards*:Shard*:ShiftExchange*:MachineShards*:Machine*:Ops*'
  "$root/build-tsan/tests/ucvm/test_ucvm" \
      --gtest_filter='ShardParity*:EngineParity*'
}

run_bench_smoke() {
  cmake -B "$root/build-release" -S "$root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$root/build-release" -j --target vm_engine
  # vm_engine exits nonzero if any engine disagrees on output, if walk and
  # unfused bytecode disagree on cycles, or if the fused rows cost more
  # modeled cycles than unfused on any of fig6/7/8.
  "$root/build-release/bench/vm_engine" --smoke
}

# Native-tier perf gate (docs/VM.md "Native tier"): rerun the fig8 engine
# rows at full size and compare the bytecode-native row's host time
# against the checked-in BENCH_vm.json baseline, failing on a >15%
# regression.  Parity (output + modeled cycles) is already enforced by
# vm_engine itself, which exits nonzero if the native row deviates from
# fused bytecode.  A host without a working C++ toolchain records no
# native row at all (never bytecode timings passed off as native); the
# gate then skips, loudly.
run_native_gate() {
  cmake -B "$root/build-release" -S "$root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$root/build-release" -j --target vm_engine
  local tmp; tmp="$(mktemp -d)"
  # The checked-in baseline is itself a best-of run, so a single noisy
  # measurement on a loaded host can overshoot the limit without any real
  # regression.  Up to three attempts; the gate only fails if every one
  # exceeds the limit (exit 1 = over limit, retryable; exit 2 = broken
  # configuration, fail immediately).
  local attempt rc
  for attempt in 1 2 3; do
    "$root/build-release/bench/vm_engine" --only=fig8 --rows=engines \
        --json="$tmp/native.json"
    rc=0
    python3 - "$root/BENCH_vm.json" "$tmp/native.json" <<'PYEOF' || rc=$?
import json, sys

def native_ms(path):
    for row in json.load(open(path)):
        if (row["program"] == "fig8_grid_obstacle"
                and row["engine"] == "bytecode-native"):
            return row["host_ms"]
    return None

base = native_ms(sys.argv[1])
cur = native_ms(sys.argv[2])
if cur is None:
    print("ci.sh: NOTICE: no working native toolchain on this host; "
          "skipping the native-tier perf gate", file=sys.stderr)
    sys.exit(0)
if base is None:
    print("ci.sh: BENCH_vm.json has no fig8 bytecode-native baseline; "
          "rerun tools/bench.sh", file=sys.stderr)
    sys.exit(2)
limit = base * 1.15
print(f"ci.sh: native gate: fig8 bytecode-native host_ms {cur:.3f} "
      f"vs baseline {base:.3f} (limit {limit:.3f})")
sys.exit(1 if cur > limit else 0)
PYEOF
    [ "$rc" -eq 0 ] && break
    [ "$rc" -eq 1 ] && [ "$attempt" -lt 3 ] && continue
    echo "ci.sh: native tier regressed more than 15% vs the BENCH_vm.json" \
         "fig8 baseline on every attempt" >&2
    rm -rf "$tmp"
    exit 1
  done
  rm -rf "$tmp"
}

case "$mode" in
  plain)
    run_suite "$root/build"
    run_profile_smoke "$root/build"
    run_fused_smoke "$root/build"
    run_fault_smoke "$root/build"
    run_optmap_smoke "$root/build"
    run_soak_smoke "$root/build"
    ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  bench) run_bench_smoke ;;
  native) run_native_gate ;;
  all)
    run_suite "$root/build"
    run_profile_smoke "$root/build"
    run_fused_smoke "$root/build"
    run_fault_smoke "$root/build"
    run_optmap_smoke "$root/build"
    run_soak_smoke "$root/build"
    run_asan
    run_tsan
    run_bench_smoke
    run_native_gate
    ;;
  *)
    echo "usage: tools/ci.sh [plain|asan|tsan|bench|native|all]" >&2
    exit 2
    ;;
esac
