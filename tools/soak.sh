#!/usr/bin/env bash
# Kill/resume soak harness for durable checkpoints (docs/ROBUSTNESS.md
# "Durable checkpoints & resume").
#
# For each (program, engine, shard-count) configuration:
#   1. run once uninterrupted with --checkpoint-dir, recording the program
#      output and the modeled cycle count;
#   2. SOAK_KILLS times: rerun with --die-at=<random statement> (the VM
#      raises SIGKILL there — no unwind, no flush), then `ucc run --resume`
#      and assert the final output AND modeled cycles are bit-identical to
#      the uninterrupted run;
#   3. on the first kill of each configuration, flip a byte in the newest
#      on-disk generation before resuming, proving the CRC check skips it
#      and the resume falls back to an older intact generation.
#
# A kill point past the program's end is tolerated (the "kill" run just
# completes); the resume leg still runs and must still reproduce.
#
# Knobs (environment):
#   BUILD_DIR    build tree holding tools/ucc        (default: build)
#   SOAK_KILLS   kill/resume iterations per config   (default: 3)
#   SOAK_PROGS   programs under programs/ to soak    (default: fig6/7/8)
#   SOAK_ENGINES VM engines to soak                  (default: walk bytecode)
#   SOAK_SHARDS  shard counts to soak                (default: 1 4)
#   SOAK_SEED    RNG seed for kill-point selection   (default: 1)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"
ucc="$build/tools/ucc"
kills="${SOAK_KILLS:-3}"
progs="${SOAK_PROGS:-fig6_shortest_path_on2 fig7_shortest_path_on3 fig8_grid_obstacle}"
engines="${SOAK_ENGINES:-walk bytecode}"
shard_counts="${SOAK_SHARDS:-1 4}"
RANDOM="${SOAK_SEED:-1}"
every=8

[ -x "$ucc" ] || { echo "soak.sh: no ucc at $ucc (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "soak.sh: FAIL: $*" >&2; exit 1; }

cycles_of() { sed -n 's/^cycles=\([0-9]*\).*/\1/p' "$1"; }

# Flips one byte at the tail of the newest generation in $1, in place.
corrupt_newest() {
  local dir="$1"
  local newest
  newest="$(ls "$dir"/ckpt-*.uck 2>/dev/null | sort | tail -n1)"
  [ -n "$newest" ] || return 1
  local last byte
  last=$(( $(stat -c%s "$newest") - 1 ))
  byte="$(od -An -tu1 -j "$last" -N1 "$newest" | tr -d ' ')"
  printf "$(printf '\\%03o' $(( (byte + 1) % 256 )))" |
      dd of="$newest" bs=1 seek="$last" conv=notrunc status=none
}

configs=0 resumes=0 fallbacks=0
for prog in $progs; do
  src="$root/programs/$prog.uc"
  [ -f "$src" ] || fail "no such program $src"
  for engine in $engines; do
    for shards in $shard_counts; do
      configs=$((configs + 1))
      cfg="$prog/$engine/shards=$shards"
      common=(--engine="$engine" --shards="$shards" --checkpoint-every=$every)

      rm -rf "$tmp/base"
      "$ucc" run "$src" "${common[@]}" --checkpoint-dir="$tmp/base" --stats \
          >"$tmp/base.out" 2>"$tmp/base.err" ||
          fail "$cfg: uninterrupted run failed: $(cat "$tmp/base.err")"
      base_cycles="$(cycles_of "$tmp/base.err")"
      [ -n "$base_cycles" ] || fail "$cfg: no cycles in --stats output"
      ckpts="$(sed -n 's/.* checkpoints=\([0-9]*\).*/\1/p' "$tmp/base.err")"
      # Kill points span the statement range the captures cover; past-the-
      # end values just mean that iteration's "kill" run completes.
      max_die=$(( ${ckpts:-1} * every )); [ "$max_die" -lt 2 ] && max_die=2

      for k in $(seq 1 "$kills"); do
        die=$(( RANDOM % max_die + 2 ))
        rm -rf "$tmp/ck"
        set +e
        # Subshell (kept alive past the kill by the status write, so bash
        # can't exec-optimize it away) so bash's own "Killed" job notice
        # lands in /dev/null, not the harness log.
        ( "$ucc" run "$src" "${common[@]}" --checkpoint-dir="$tmp/ck" \
              --die-at="$die" >"$tmp/kill.out" 2>"$tmp/kill.err"
          echo $? >"$tmp/kill.status" ) 2>/dev/null
        kill_status="$(cat "$tmp/kill.status")"
        set -e
        # 137 = SIGKILL; 0 = the kill point was past the program's end.
        if [ "$kill_status" -ne 137 ] && [ "$kill_status" -ne 0 ]; then
          fail "$cfg: kill run (--die-at=$die) exited $kill_status:" \
               "$(cat "$tmp/kill.err")"
        fi

        expect_fallback=0
        if [ "$k" -eq 1 ] && corrupt_newest "$tmp/ck"; then
          expect_fallback=1
        fi

        "$ucc" run "$src" "${common[@]}" --resume="$tmp/ck" --stats \
            >"$tmp/res.out" 2>"$tmp/res.err" ||
            fail "$cfg: resume after --die-at=$die failed:" \
                 "$(cat "$tmp/res.err")"
        resumes=$((resumes + 1))

        cmp -s "$tmp/base.out" "$tmp/res.out" ||
            fail "$cfg: resumed output differs (die-at=$die)"
        res_cycles="$(cycles_of "$tmp/res.err")"
        [ "$res_cycles" = "$base_cycles" ] ||
            fail "$cfg: resumed cycles $res_cycles != $base_cycles" \
                 "(die-at=$die)"
        if [ "$expect_fallback" -eq 1 ]; then
          grep -q "skipping" "$tmp/res.err" ||
              fail "$cfg: corrupt newest generation was not skipped:" \
                   "$(cat "$tmp/res.err")"
          fallbacks=$((fallbacks + 1))
        fi
      done
      echo "soak.sh: ok: $cfg ($kills kill/resume rounds," \
           "cycles=$base_cycles)"
    done
  done
done

echo "soak.sh: PASS: $configs configs, $resumes resumes," \
     "$fallbacks corruption fallbacks"
