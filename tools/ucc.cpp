// ucc — the UC compiler/runner command-line driver.
//
//   ucc run program.uc            compile and execute on a simulated CM-2
//   ucc profile program.uc        run with per-site attribution and print
//                                 the hot-site table (docs/PROFILING.md)
//   ucc bench program.uc          time the program under both VM engines
//   ucc check program.uc          report diagnostics (+ analysis warnings)
//   ucc analyze program.uc        static analysis: interference + comm
//                                 classification (docs/ANALYSIS.md)
//   ucc optimize-map program.uc   dependence-proved mapping search: pick a
//                                 `map` section, validate by replay
//                                 (docs/MAPPING.md)
//   ucc emit-cstar program.uc     print the C* translation (paper §5)
//   ucc emit-uc program.uc        print the canonical UC rendering
//
// Options:
//   --stats                 print machine statistics after a run
//   --trace                 print the Paris-style instruction trace
//   --engine=<walk|bytecode>  VM execution engine (default bytecode)
//   --fuse=<on|off>         statement fusion + communication-plan cache
//                           on the bytecode engine (default on)
//   --repeat=<n>            bench: report the median of n timed runs
//                           after one untimed warmup (default 1, no warmup)
//   --seed=<n>              machine RNG seed (default 1)
//   --procs=<n>             physical processors (default 16384)
//   --threads=<n>           host threads for the data-parallel runtime
//   --shards=<n>            VP-set shards (0 = one per thread; default 1;
//                           host-only: outputs and cycles are unchanged)
//   --no-mappings           ignore map sections
//   --no-procopt            disable the §4 processor optimisation
//   --lower-solve           lower solve to *par at the source level
//   --rewrite-permutes      apply affine permutes as subscript rewrites
//   --fold / --no-fold      constant folding (default on)
//   --no-notes              analyze: drop UC-Axxx notes, keep warnings
//   --no-summary            analyze: drop the communication summary
//   --werror                analyze: nonzero exit on any warning
//   --json=<file>           analyze / optimize-map: machine-readable report
//   --emit=<file>           optimize-map: write the rewritten program
//   --beam=<n>              optimize-map: beam width (default 4)
//   --no-validate           optimize-map: trust the static prediction, skip
//                           the replay validation
//   --profile[=out.json]    run: profile; bare prints the table to stderr,
//                           with a path writes the per-site JSON there
//   --trace-json=<file>     profile/run --profile: Chrome trace-event JSON
//   --json=<file>           profile: also write the per-site JSON
//   --top=<n>               profile: print only the n hottest sites
//   --no-static             profile: skip the static-analysis join column
//   --faults=<spec>         inject seeded transient faults, e.g.
//                           router:p=1e-4;news:p=1e-5,seed=42
//                           (docs/ROBUSTNESS.md)
//   --checkpoint-every=<n>  capture recovery checkpoints every n
//                           statements (0 = off, the default)
//   --max-replays=<n>       checkpoint replay budget (default 64)
//   --checkpoint-dir=<dir>  persist every captured checkpoint durably in
//                           <dir> (atomic write + generation rotation,
//                           docs/ROBUSTNESS.md); requires
//                           --checkpoint-every
//   --checkpoint-keep=<n>   on-disk snapshot generations to keep
//                           (default 3)
//   --resume[=<dir>]        restore the newest intact snapshot from <dir>
//                           (bare form: from --checkpoint-dir) and finish
//                           the run; corrupt or torn generations are
//                           skipped with a diagnostic
//   --die-at=<n>            testing hook: raise SIGKILL just before the
//                           n-th statement (tools/soak.sh)
//   --timeout=<secs>        wall-clock watchdog: abort cleanly after this
//                           many host seconds
//   --max-field-mb=<n>      cap total CM field memory at n MiB
//   --max-iterations=<n>    iteration limit for solve/*par/... loops
//                           (0 = unlimited)
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "uc/uc.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: ucc <command> <file.uc> [options]\n"
      "\n"
      "commands:\n"
      "  run         compile and execute on a simulated CM-2\n"
      "  profile     run with per-site attribution; print the hot-site\n"
      "              table (modeled cycles, host ms, op mix, static join)\n"
      "  bench       time the program under both VM engines\n"
      "  check       report diagnostics (plus analysis warnings)\n"
      "  analyze     static analysis: par-block interference and\n"
      "              communication-pattern classification\n"
      "  optimize-map  dependence-proved mapping search; validates the\n"
      "              chosen map section by replay (docs/MAPPING.md)\n"
      "  emit-cstar  print the C* translation\n"
      "  emit-uc     print the canonical UC rendering\n"
      "\n"
      "options:\n"
      "  --stats               print machine statistics after a run\n"
      "  --trace               print the Paris-style instruction trace\n"
      "  --engine=<walk|bytecode|native>  VM execution engine (default\n"
      "                        bytecode; native compiles lane kernels to a\n"
      "                        cached .so with the host toolchain)\n"
      "  --native-cache-dir=<dir>  native: compiled-kernel cache directory\n"
      "                        (default $UC_NATIVE_CACHE_DIR or /tmp)\n"
      "  --native-cc=<cc>      native: compiler driver (default\n"
      "                        $UC_NATIVE_CC or c++)\n"
      "  --fuse=<on|off>       statement fusion + plan cache (default on)\n"
      "  --repeat=<n>          bench: median of n timed runs + warmup\n"
      "  --json=<file>         bench: write the per-engine table as JSON\n"
      "  --seed=<n>            machine RNG seed (default 1)\n"
      "  --procs=<n>           physical processors (default 16384)\n"
      "  --threads=<n>         host threads for the runtime\n"
      "  --shards=<n>          VP-set shards (0 = one per thread)\n"
      "  --no-mappings         ignore map sections\n"
      "  --no-procopt          disable the processor optimisation\n"
      "  --lower-solve         lower solve to *par at the source level\n"
      "  --rewrite-permutes    apply affine permutes as subscript rewrites\n"
      "  --fold / --no-fold    constant folding (default on)\n"
      "  --no-notes            analyze: drop UC-Axxx notes\n"
      "  --no-summary          analyze: drop the communication summary\n"
      "  --werror              analyze: nonzero exit on any warning\n"
      "  --emit=<file>         optimize-map: write the rewritten program\n"
      "  --beam=<n>            optimize-map: beam width (default 4)\n"
      "  --no-validate         optimize-map: skip the replay validation\n"
      "  --profile[=out.json]  run: profile; bare prints the table to\n"
      "                        stderr, a path writes the per-site JSON\n"
      "  --trace-json=<file>   write Chrome trace-event JSON\n"
      "  --json=<file>         profile: also write the per-site JSON\n"
      "  --top=<n>             profile: print only the n hottest sites\n"
      "  --no-static           profile: skip the static-analysis join\n"
      "  --faults=<spec>       inject seeded transient faults (e.g.\n"
      "                        router:p=1e-4;news:p=1e-5,seed=42)\n"
      "  --checkpoint-every=<n>  capture recovery checkpoints every n\n"
      "                        statements (0 = off)\n"
      "  --max-replays=<n>     checkpoint replay budget (default 64)\n"
      "  --checkpoint-dir=<dir>  persist checkpoints durably in <dir>\n"
      "                        (requires --checkpoint-every)\n"
      "  --checkpoint-keep=<n> on-disk generations to keep (default 3)\n"
      "  --resume[=<dir>]      restore the newest intact snapshot and\n"
      "                        finish the run (skips corrupt generations)\n"
      "  --die-at=<n>          testing: SIGKILL before the n-th statement\n"
      "  --timeout=<secs>      wall-clock watchdog (abort cleanly)\n"
      "  --max-field-mb=<n>    cap total CM field memory at n MiB\n"
      "  --max-iterations=<n>  loop iteration limit (0 = unlimited)\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

struct Options {
  std::string command;
  std::string file;
  bool stats = false;
  bool trace = false;
  bool werror = false;
  bool profile = false;          // run --profile (table to stderr)
  bool join_static = true;       // --no-static turns the join column off
  std::string profile_json;      // --profile=<out.json>
  std::string sites_json;        // --json=<file> (profile/analyze/opt-map)
  std::string trace_json;        // --trace-json=<file>
  std::string emit_path;         // --emit=<file> (optimize-map)
  bool validate = true;          // --no-validate (optimize-map)
  std::uint64_t beam = 4;        // --beam=<n> (optimize-map)
  std::uint64_t top = 0;         // --top=<n>, 0 = all hot sites
  std::uint64_t repeat = 1;      // bench: timed runs per row
  uc::cm::MachineOptions machine;
  uc::vm::ExecOptions exec;
  uc::CompileOptions compile;
  uc::AnalyzeOptions analyze;
};

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 3) return false;
  opts.command = argv[1];
  opts.file = argv[2];
  bool bad_value = false;
  for (int k = 3; k < argc; ++k) {
    std::string arg = argv[k];
    // Parses `<prefix><n>`, rejecting empty, non-numeric, trailing-garbage
    // and out-of-range values; zero is rejected unless `allow_zero` (a
    // machine with 0 processors or a runtime with 0 threads is an error the
    // simulator would otherwise hit much later, far from the typo).
    auto int_value = [&](const char* prefix, std::uint64_t& out,
                         bool allow_zero = false) {
      if (arg.rfind(prefix, 0) != 0) return false;
      const char* s = arg.c_str() + std::strlen(prefix);
      char* end = nullptr;
      errno = 0;
      const std::uint64_t parsed = std::strtoull(s, &end, 10);
      if (*s == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
          *s == '-' || (!allow_zero && parsed == 0)) {
        std::fprintf(stderr,
                     "ucc: invalid value in '%s' (expected a %s integer)\n",
                     arg.c_str(), allow_zero ? "non-negative" : "positive");
        bad_value = true;
        return true;  // the prefix matched; stop the option search
      }
      out = parsed;
      return true;
    };
    auto str_value = [&](const char* prefix, std::string& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = arg.substr(std::strlen(prefix));
      if (out.empty()) {
        std::fprintf(stderr, "ucc: missing path in '%s'\n", arg.c_str());
        bad_value = true;
      }
      return true;
    };
    // Parses `<prefix><x>` as a non-negative floating-point value.
    auto float_value = [&](const char* prefix, double& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      const char* s = arg.c_str() + std::strlen(prefix);
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(s, &end);
      if (*s == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
          parsed < 0.0) {
        std::fprintf(stderr,
                     "ucc: invalid value in '%s' (expected a non-negative "
                     "number)\n",
                     arg.c_str());
        bad_value = true;
        return true;
      }
      out = parsed;
      return true;
    };
    std::uint64_t v = 0;
    std::string sv;
    if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--trace") {
      opts.trace = true;
      opts.machine.record_paris_trace = true;
    } else if (arg == "--engine=walk") {
      opts.exec.engine = uc::vm::ExecEngine::kWalk;
    } else if (arg == "--engine=bytecode") {
      opts.exec.engine = uc::vm::ExecEngine::kBytecode;
    } else if (arg == "--engine=native") {
      opts.exec.engine = uc::vm::ExecEngine::kNative;
    } else if (str_value("--native-cache-dir=", opts.exec.native_cache_dir)) {
    } else if (str_value("--native-cc=", opts.exec.native_cc)) {
    } else if (arg == "--fuse=on") {
      opts.exec.fuse = true;
    } else if (arg == "--fuse=off") {
      opts.exec.fuse = false;
    } else if (int_value("--repeat=", v)) {
      opts.repeat = v;
    } else if (int_value("--seed=", v, /*allow_zero=*/true)) {
      opts.machine.seed = v;
    } else if (int_value("--procs=", v)) {
      opts.machine.cost.physical_processors = v;
    } else if (int_value("--threads=", v)) {
      opts.machine.host_threads = static_cast<unsigned>(v);
    } else if (int_value("--shards=", v, /*allow_zero=*/true)) {
      // 0 = one shard per host thread (docs/SHARDING.md).
      opts.machine.shards = static_cast<unsigned>(v);
    } else if (str_value("--faults=", sv)) {
      try {
        opts.machine.faults = uc::cm::parse_fault_spec(sv);
      } catch (const uc::support::ApiError& e) {
        std::fprintf(stderr, "ucc: %s\n", e.what());
        bad_value = true;
      }
    } else if (int_value("--checkpoint-every=", v, /*allow_zero=*/true)) {
      opts.exec.checkpoint_every = v;
    } else if (int_value("--max-replays=", v)) {
      opts.exec.max_replays = v;
    } else if (str_value("--checkpoint-dir=", sv)) {
      opts.exec.checkpoint_dir = sv;
    } else if (int_value("--checkpoint-keep=", v)) {
      opts.exec.checkpoint_keep = v;
    } else if (arg == "--resume") {
      opts.exec.resume = true;
    } else if (str_value("--resume=", sv)) {
      opts.exec.resume = true;
      opts.exec.checkpoint_dir = sv;
    } else if (int_value("--die-at=", v)) {
      opts.exec.die_at_statement = v;
    } else if (float_value("--timeout=", opts.exec.timeout_seconds)) {
    } else if (int_value("--max-field-mb=", v)) {
      opts.machine.max_field_bytes = v << 20;
    } else if (int_value("--max-iterations=", v, /*allow_zero=*/true)) {
      opts.exec.max_iterations = static_cast<std::int64_t>(v);
    } else if (arg == "--profile") {
      opts.profile = true;
    } else if (str_value("--profile=", opts.profile_json)) {
      opts.profile = true;
    } else if (str_value("--trace-json=", opts.trace_json)) {
    } else if (str_value("--json=", opts.sites_json)) {
    } else if (str_value("--emit=", opts.emit_path)) {
    } else if (arg == "--no-validate") {
      opts.validate = false;
    } else if (int_value("--beam=", v)) {
      opts.beam = v;
    } else if (int_value("--top=", v)) {
      opts.top = v;
    } else if (arg == "--no-static") {
      opts.join_static = false;
    } else if (arg == "--no-mappings") {
      opts.exec.apply_mappings = false;
    } else if (arg == "--no-procopt") {
      opts.exec.processor_optimization = false;
    } else if (arg == "--lower-solve") {
      opts.compile.lower_solve = true;
    } else if (arg == "--rewrite-permutes") {
      opts.compile.rewrite_permutes = true;
    } else if (arg == "--fold") {
      opts.compile.fold_constants = true;
    } else if (arg == "--no-fold") {
      opts.compile.fold_constants = false;
    } else if (arg == "--no-notes") {
      opts.analyze.include_notes = false;
    } else if (arg == "--no-summary") {
      opts.analyze.include_summary = false;
    } else if (arg == "--werror") {
      opts.werror = true;
    } else {
      std::fprintf(stderr, "ucc: unknown option '%s'\n", arg.c_str());
      return false;
    }
    if (bad_value) return false;
  }
  // Durable-checkpoint option consistency is checked here, where the
  // message can name the flags, rather than deep in the VM where only the
  // ExecOptions fields are visible (docs/ROBUSTNESS.md).
  if (opts.exec.resume && opts.exec.checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "ucc: --resume needs a checkpoint directory; pass "
                 "--resume=<dir> or add --checkpoint-dir=<dir>\n");
    return false;
  }
  if (!opts.exec.checkpoint_dir.empty() &&
      opts.exec.checkpoint_every == 0) {
    std::fprintf(stderr,
                 "ucc: --checkpoint-dir requires --checkpoint-every=<n> "
                 "with n > 0 (durable snapshots are written at in-memory "
                 "capture points, docs/ROBUSTNESS.md)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();

  std::string source;
  if (!read_file(opts.file, source)) {
    std::fprintf(stderr, "ucc: cannot read '%s'\n", opts.file.c_str());
    return 2;
  }

  // Durable checkpoints refuse to resume a snapshot written by a different
  // program or under different source-level compilation flags; the hash
  // binds the snapshot to this exact input (docs/ROBUSTNESS.md).
  {
    std::uint64_t h = uc::support::fnv1a(source);
    h = uc::support::fnv1a_u64(
        (opts.compile.lower_solve ? 1ull : 0ull) |
            (opts.compile.rewrite_permutes ? 2ull : 0ull) |
            (opts.compile.fold_constants ? 4ull : 0ull),
        h);
    opts.exec.program_hash = h;
  }
  if (!opts.exec.checkpoint_dir.empty()) {
    opts.exec.log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }

  try {
    if (opts.command == "check") {
      auto diags = uc::Program::check(opts.file, source);
      if (!diags.empty()) {
        std::fputs(diags.c_str(), stderr);
        return 1;
      }
      // Surface analysis warnings (not notes) without failing the check.
      uc::AnalyzeOptions aopts = opts.analyze;
      aopts.include_notes = false;
      aopts.include_summary = false;
      aopts.machine = opts.machine;
      auto analysis = uc::analyze(opts.file, source, aopts);
      if (analysis.warnings > 0) std::fputs(analysis.text.c_str(), stderr);
      std::printf("%s: ok\n", opts.file.c_str());
      return 0;
    }

    if (opts.command == "analyze") {
      uc::AnalyzeOptions aopts = opts.analyze;
      aopts.machine = opts.machine;
      auto analysis = uc::analyze(opts.file, std::move(source), aopts);
      if (!analysis.compiled) {
        std::fputs(analysis.text.c_str(), stderr);
        return 1;
      }
      std::fputs(analysis.text.c_str(), stdout);
      std::printf("%zu errors, %zu warnings, %zu notes\n", analysis.errors,
                  analysis.warnings, analysis.notes);
      if (!opts.sites_json.empty() &&
          !write_file(opts.sites_json, analysis.json)) {
        std::fprintf(stderr, "ucc: cannot write '%s'\n",
                     opts.sites_json.c_str());
        return 2;
      }
      if (analysis.errors > 0) return 1;
      if (opts.werror && analysis.warnings > 0) return 1;
      return 0;
    }

    if (opts.command == "optimize-map") {
      uc::OptimizeMapOptions mopts;
      mopts.machine = opts.machine;
      mopts.exec = opts.exec;
      mopts.beam_width = static_cast<std::size_t>(opts.beam);
      mopts.validate = opts.validate;
      auto result = uc::optimize_map(opts.file, std::move(source), mopts);
      if (!result.compiled) {
        std::fputs(result.text.c_str(), stderr);
        return 1;
      }
      std::fputs(result.text.c_str(), stdout);
      if (!opts.sites_json.empty() &&
          !write_file(opts.sites_json, result.json())) {
        std::fprintf(stderr, "ucc: cannot write '%s'\n",
                     opts.sites_json.c_str());
        return 2;
      }
      if (!opts.emit_path.empty()) {
        if (result.optimized_source.empty()) {
          std::fprintf(stderr,
                       "ucc: no improving mapping found; nothing to emit\n");
          return 1;
        }
        if (!write_file(opts.emit_path, result.optimized_source)) {
          std::fprintf(stderr, "ucc: cannot write '%s'\n",
                       opts.emit_path.c_str());
          return 2;
        }
      }
      return 0;
    }

    auto program =
        uc::Program::compile(opts.file, std::move(source), opts.compile);
    if (opts.command == "emit-cstar") {
      std::fputs(program.to_cstar_source().c_str(), stdout);
      return 0;
    }
    if (opts.command == "emit-uc") {
      std::fputs(program.to_uc_source().c_str(), stdout);
      return 0;
    }
    if (opts.command == "bench") {
      // Time the same program under each engine configuration on fresh
      // machines.  walk and bytecode (fusion off) must agree on output and
      // modeled cycles; the fused configuration must reproduce the output
      // with no more modeled cycles than unfused bytecode.
      struct Row {
        const char* name;
        uc::vm::ExecEngine engine;
        bool fuse;
        double ms = 0.0;
        std::uint64_t cycles = 0;
        std::string output;
        bool skipped = false;  // native: toolchain unavailable
      };
      Row rows[4] = {
          {"walk", uc::vm::ExecEngine::kWalk, false},
          {"bytecode", uc::vm::ExecEngine::kBytecode, false},
          {"bytecode-fused", uc::vm::ExecEngine::kBytecode, true},
          {"bytecode-native", uc::vm::ExecEngine::kNative, true}};
      for (auto& row : rows) {
        uc::vm::ExecOptions eopts = opts.exec;
        eopts.engine = row.engine;
        eopts.fuse = row.fuse;
        // --repeat=N: one untimed warmup, then the median of N timed runs
        // (every run is a fresh machine; outputs and cycles are
        // deterministic, only host time varies).
        const std::uint64_t runs = opts.repeat;
        std::vector<double> times;
        times.reserve(static_cast<std::size_t>(runs));
        for (std::uint64_t r = (runs > 1 ? 0 : 1); r <= runs; ++r) {
          uc::cm::Machine machine(opts.machine);
          const auto t0 = std::chrono::steady_clock::now();
          auto result = program.run_on(machine, eopts);
          const auto t1 = std::chrono::steady_clock::now();
          if (row.engine == uc::vm::ExecEngine::kNative &&
              result.native_dispatches() == 0) {
            // Nothing actually ran natively (no working toolchain, or the
            // emitter declined every statement): report the row as skipped
            // rather than passing off bytecode timings as native.
            row.skipped = true;
            break;
          }
          if (r == 0) continue;  // warmup
          times.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          row.cycles = result.stats().cycles;
          row.output = result.output();
        }
        std::sort(times.begin(), times.end());
        const std::size_t n = times.size();
        if (n > 0) {
          row.ms = (n % 2 != 0) ? times[n / 2]
                                : 0.5 * (times[n / 2 - 1] + times[n / 2]);
        }
      }
      for (const auto& row : rows) {
        if (row.skipped) {
          std::printf("%-15s    (skipped: no native toolchain)\n", row.name);
          continue;
        }
        std::printf("%-15s %10.3f ms  %12llu cycles\n", row.name, row.ms,
                    static_cast<unsigned long long>(row.cycles));
      }
      if (!opts.sites_json.empty()) {
        std::string json = "[\n";
        bool first = true;
        for (const auto& row : rows) {
          if (row.skipped) continue;
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "%s  {\"engine\": \"%s\", \"host_ms\": %.3f, "
                        "\"cycles\": %llu}",
                        first ? "" : ",\n", row.name, row.ms,
                        static_cast<unsigned long long>(row.cycles));
          json += buf;
          first = false;
        }
        json += "\n]\n";
        if (!write_file(opts.sites_json, json)) {
          std::fprintf(stderr, "ucc bench: cannot write '%s'\n",
                       opts.sites_json.c_str());
          return 1;
        }
      }
      if (rows[0].output != rows[1].output ||
          rows[0].cycles != rows[1].cycles) {
        std::fprintf(stderr, "ucc bench: engines disagree (output %s, "
                             "cycles %s)\n",
                     rows[0].output == rows[1].output ? "match" : "differ",
                     rows[0].cycles == rows[1].cycles ? "match" : "differ");
        return 1;
      }
      if (rows[2].output != rows[1].output) {
        std::fprintf(stderr,
                     "ucc bench: fused output differs from unfused\n");
        return 1;
      }
      if (rows[2].cycles > rows[1].cycles) {
        std::fprintf(stderr,
                     "ucc bench: fused run charged more cycles (%llu) than "
                     "unfused (%llu)\n",
                     static_cast<unsigned long long>(rows[2].cycles),
                     static_cast<unsigned long long>(rows[1].cycles));
        return 1;
      }
      if (!rows[3].skipped &&
          (rows[3].output != rows[2].output ||
           rows[3].cycles != rows[2].cycles)) {
        std::fprintf(stderr,
                     "ucc bench: native run differs from fused bytecode "
                     "(output %s, cycles %s)\n",
                     rows[3].output == rows[2].output ? "match" : "differ",
                     rows[3].cycles == rows[2].cycles ? "match" : "differ");
        return 1;
      }
      return 0;
    }
    if (opts.command == "profile") {
      uc::ProfileOptions popts;
      popts.machine = opts.machine;
      popts.exec = opts.exec;
      popts.capture_trace = !opts.trace_json.empty();
      popts.join_static = opts.join_static;
      auto prof = program.profile(popts);
      std::fputs(prof.run.output().c_str(), stdout);
      uc::prof::TableOptions topts;
      topts.max_rows = static_cast<std::size_t>(opts.top);
      topts.show_static = opts.join_static;
      if (prof.aborted) {
        // A timeout or escalated fault mid-profile still flushes the
        // per-site table — the hot sites up to the abort are exactly what
        // a hang or fault storm needs diagnosed (docs/ROBUSTNESS.md).
        std::fprintf(stderr, "runtime error: %s\n", prof.error.c_str());
        std::fputs(prof.table(topts).c_str(), stderr);
        std::fprintf(stderr, "partial statistics (run aborted):\n%s\n",
                     prof.stats.to_string(opts.machine.cost).c_str());
        return 1;
      }
      std::fputs(prof.table(topts).c_str(), stdout);
      if (!opts.sites_json.empty() &&
          !write_file(opts.sites_json, prof.json())) {
        std::fprintf(stderr, "ucc: cannot write '%s'\n",
                     opts.sites_json.c_str());
        return 2;
      }
      if (!opts.trace_json.empty() &&
          !write_file(opts.trace_json, prof.trace())) {
        std::fprintf(stderr, "ucc: cannot write '%s'\n",
                     opts.trace_json.c_str());
        return 2;
      }
      return 0;
    }
    if (opts.command != "run") return usage();

    if (opts.profile || !opts.trace_json.empty()) {
      // Profiled run: same output and modeled cycles, plus attribution.
      uc::ProfileOptions popts;
      popts.machine = opts.machine;
      popts.exec = opts.exec;
      popts.capture_trace = !opts.trace_json.empty();
      popts.join_static = opts.join_static;
      auto prof = program.profile(popts);
      std::fputs(prof.run.output().c_str(), stdout);
      if (prof.aborted) {
        // Same contract as the plain run's partial statistics: an aborted
        // profiled run still surfaces the table it attributed so far.
        std::fprintf(stderr, "runtime error: %s\n", prof.error.c_str());
        std::fputs(prof.table().c_str(), stderr);
        if (opts.stats) {
          std::fprintf(stderr, "partial statistics (run aborted):\n%s\n",
                       prof.stats.to_string(opts.machine.cost).c_str());
        }
        return 1;
      }
      if (opts.profile && opts.profile_json.empty()) {
        std::fputs(prof.table().c_str(), stderr);
      } else if (!opts.profile_json.empty() &&
                 !write_file(opts.profile_json, prof.json())) {
        std::fprintf(stderr, "ucc: cannot write '%s'\n",
                     opts.profile_json.c_str());
        return 2;
      }
      if (!opts.trace_json.empty() &&
          !write_file(opts.trace_json, prof.trace())) {
        std::fprintf(stderr, "ucc: cannot write '%s'\n",
                     opts.trace_json.c_str());
        return 2;
      }
      if (opts.stats) {
        std::fprintf(stderr, "%s\n",
                     prof.stats.to_string(opts.machine.cost).c_str());
      }
      return 0;
    }

    // Plain run.  With a durable checkpoint directory, an escalated
    // transient fault (the in-memory replay budget is exhausted) retries
    // from the newest intact on-disk snapshot in a fresh machine before
    // giving up (docs/ROBUSTNESS.md).
    uc::vm::ExecOptions exec = opts.exec;
    for (int attempt = 0;; ++attempt) {
      uc::cm::Machine machine(opts.machine);
      auto abort_run = [&](const uc::support::UcRuntimeError& e) {
        // A watchdog timeout, memory-cap hit or unrecovered fault still
        // reports what the machine did up to the abort (partial stats make
        // hangs and OOMs diagnosable, docs/ROBUSTNESS.md).
        std::fprintf(stderr, "runtime error: %s\n", e.what());
        if (opts.trace) {
          for (const auto& line : machine.paris_trace()) {
            std::fprintf(stderr, "%s\n", line.c_str());
          }
        }
        if (opts.stats) {
          std::fprintf(stderr, "partial statistics (run aborted):\n%s\n",
                       machine.stats().to_string(opts.machine.cost).c_str());
        }
        return 1;
      };
      try {
        auto result = program.run_on(machine, exec);
        std::fputs(result.output().c_str(), stdout);
        if (opts.trace) {
          for (const auto& line : machine.paris_trace()) {
            std::fprintf(stderr, "%s\n", line.c_str());
          }
        }
        if (opts.stats) {
          std::fprintf(stderr, "%s\n",
                       result.stats()
                           .to_string(opts.machine.cost)
                           .c_str());
        }
        return 0;
      } catch (const uc::support::EscalatedFault& e) {
        if (exec.checkpoint_dir.empty() || attempt >= 3) {
          return abort_run(e);
        }
        std::fprintf(stderr, "runtime error: %s\n", e.what());
        std::fprintf(stderr,
                     "ucc: in-memory replay budget exhausted; restoring "
                     "from durable checkpoints in '%s' (attempt %d of 3)\n",
                     exec.checkpoint_dir.c_str(), attempt + 1);
        exec.resume = true;
        exec.fresh_replay_budget = true;
      } catch (const uc::support::UcRuntimeError& e) {
        return abort_run(e);
      }
    }
  } catch (const uc::support::UcCompileError& e) {
    std::fputs(e.what(), stderr);
    return 1;
  } catch (const uc::support::UcRuntimeError& e) {
    std::fprintf(stderr, "runtime error: %s\n", e.what());
    return 1;
  } catch (const uc::support::ApiError& e) {
    // Library misuse surfaced through the public API: report it instead of
    // letting std::terminate take the process down with an abort.
    std::fprintf(stderr, "ucc: internal error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ucc: %s\n", e.what());
    return 1;
  }
}
