// ucc — the UC compiler/runner command-line driver.
//
//   ucc run program.uc            compile and execute on a simulated CM-2
//   ucc bench program.uc          time the program under both VM engines
//   ucc check program.uc          report diagnostics (+ analysis warnings)
//   ucc analyze program.uc        static analysis: interference + comm
//                                 classification (docs/ANALYSIS.md)
//   ucc emit-cstar program.uc     print the C* translation (paper §5)
//   ucc emit-uc program.uc        print the canonical UC rendering
//
// Options:
//   --stats                 print machine statistics after a run
//   --trace                 print the Paris-style instruction trace
//   --engine=<walk|bytecode>  VM execution engine (default bytecode)
//   --seed=<n>              machine RNG seed (default 1)
//   --procs=<n>             physical processors (default 16384)
//   --threads=<n>           host threads for the data-parallel runtime
//   --no-mappings           ignore map sections
//   --no-procopt            disable the §4 processor optimisation
//   --lower-solve           lower solve to *par at the source level
//   --rewrite-permutes      apply affine permutes as subscript rewrites
//   --fold / --no-fold      constant folding (default on)
//   --no-notes              analyze: drop UC-Axxx notes, keep warnings
//   --no-summary            analyze: drop the communication summary
//   --werror                analyze: nonzero exit on any warning
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/error.hpp"
#include "uc/uc.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: ucc <command> <file.uc> [options]\n"
      "\n"
      "commands:\n"
      "  run         compile and execute on a simulated CM-2\n"
      "  bench       time the program under both VM engines\n"
      "  check       report diagnostics (plus analysis warnings)\n"
      "  analyze     static analysis: par-block interference and\n"
      "              communication-pattern classification\n"
      "  emit-cstar  print the C* translation\n"
      "  emit-uc     print the canonical UC rendering\n"
      "\n"
      "options:\n"
      "  --stats               print machine statistics after a run\n"
      "  --trace               print the Paris-style instruction trace\n"
      "  --engine=<walk|bytecode>  VM execution engine (default bytecode)\n"
      "  --seed=<n>            machine RNG seed (default 1)\n"
      "  --procs=<n>           physical processors (default 16384)\n"
      "  --threads=<n>         host threads for the runtime\n"
      "  --no-mappings         ignore map sections\n"
      "  --no-procopt          disable the processor optimisation\n"
      "  --lower-solve         lower solve to *par at the source level\n"
      "  --rewrite-permutes    apply affine permutes as subscript rewrites\n"
      "  --fold / --no-fold    constant folding (default on)\n"
      "  --no-notes            analyze: drop UC-Axxx notes\n"
      "  --no-summary          analyze: drop the communication summary\n"
      "  --werror              analyze: nonzero exit on any warning\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

struct Options {
  std::string command;
  std::string file;
  bool stats = false;
  bool trace = false;
  bool werror = false;
  uc::cm::MachineOptions machine;
  uc::vm::ExecOptions exec;
  uc::CompileOptions compile;
  uc::AnalyzeOptions analyze;
};

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 3) return false;
  opts.command = argv[1];
  opts.file = argv[2];
  for (int k = 3; k < argc; ++k) {
    std::string arg = argv[k];
    auto int_value = [&](const char* prefix, std::uint64_t& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = std::strtoull(arg.c_str() + std::strlen(prefix), nullptr, 10);
      return true;
    };
    std::uint64_t v = 0;
    if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--trace") {
      opts.trace = true;
      opts.machine.record_paris_trace = true;
    } else if (arg == "--engine=walk") {
      opts.exec.engine = uc::vm::ExecEngine::kWalk;
    } else if (arg == "--engine=bytecode") {
      opts.exec.engine = uc::vm::ExecEngine::kBytecode;
    } else if (int_value("--seed=", v)) {
      opts.machine.seed = v;
    } else if (int_value("--procs=", v)) {
      opts.machine.cost.physical_processors = v;
    } else if (int_value("--threads=", v)) {
      opts.machine.host_threads = static_cast<unsigned>(v);
    } else if (arg == "--no-mappings") {
      opts.exec.apply_mappings = false;
    } else if (arg == "--no-procopt") {
      opts.exec.processor_optimization = false;
    } else if (arg == "--lower-solve") {
      opts.compile.lower_solve = true;
    } else if (arg == "--rewrite-permutes") {
      opts.compile.rewrite_permutes = true;
    } else if (arg == "--fold") {
      opts.compile.fold_constants = true;
    } else if (arg == "--no-fold") {
      opts.compile.fold_constants = false;
    } else if (arg == "--no-notes") {
      opts.analyze.include_notes = false;
    } else if (arg == "--no-summary") {
      opts.analyze.include_summary = false;
    } else if (arg == "--werror") {
      opts.werror = true;
    } else {
      std::fprintf(stderr, "ucc: unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();

  std::string source;
  if (!read_file(opts.file, source)) {
    std::fprintf(stderr, "ucc: cannot read '%s'\n", opts.file.c_str());
    return 2;
  }

  if (opts.command == "check") {
    auto diags = uc::Program::check(opts.file, source);
    if (!diags.empty()) {
      std::fputs(diags.c_str(), stderr);
      return 1;
    }
    // Surface analysis warnings (not notes) without failing the check.
    uc::AnalyzeOptions aopts = opts.analyze;
    aopts.include_notes = false;
    aopts.include_summary = false;
    aopts.machine = opts.machine;
    auto analysis = uc::analyze(opts.file, source, aopts);
    if (analysis.warnings > 0) std::fputs(analysis.text.c_str(), stderr);
    std::printf("%s: ok\n", opts.file.c_str());
    return 0;
  }

  if (opts.command == "analyze") {
    uc::AnalyzeOptions aopts = opts.analyze;
    aopts.machine = opts.machine;
    auto analysis = uc::analyze(opts.file, std::move(source), aopts);
    if (!analysis.compiled) {
      std::fputs(analysis.text.c_str(), stderr);
      return 1;
    }
    std::fputs(analysis.text.c_str(), stdout);
    std::printf("%zu errors, %zu warnings, %zu notes\n", analysis.errors,
                analysis.warnings, analysis.notes);
    if (analysis.errors > 0) return 1;
    if (opts.werror && analysis.warnings > 0) return 1;
    return 0;
  }

  try {
    auto program =
        uc::Program::compile(opts.file, std::move(source), opts.compile);
    if (opts.command == "emit-cstar") {
      std::fputs(program.to_cstar_source().c_str(), stdout);
      return 0;
    }
    if (opts.command == "emit-uc") {
      std::fputs(program.to_uc_source().c_str(), stdout);
      return 0;
    }
    if (opts.command == "bench") {
      // Time the same program under both engines on fresh machines and
      // check that output and modeled cycles agree.
      struct Row {
        const char* name;
        uc::vm::ExecEngine engine;
        double ms = 0.0;
        std::uint64_t cycles = 0;
        std::string output;
      };
      Row rows[2] = {{"walk", uc::vm::ExecEngine::kWalk},
                     {"bytecode", uc::vm::ExecEngine::kBytecode}};
      for (auto& row : rows) {
        uc::cm::Machine machine(opts.machine);
        uc::vm::ExecOptions eopts = opts.exec;
        eopts.engine = row.engine;
        const auto t0 = std::chrono::steady_clock::now();
        auto result = program.run_on(machine, eopts);
        const auto t1 = std::chrono::steady_clock::now();
        row.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        row.cycles = result.stats().cycles;
        row.output = result.output();
      }
      for (const auto& row : rows) {
        std::printf("%-9s %10.3f ms  %12llu cycles\n", row.name, row.ms,
                    static_cast<unsigned long long>(row.cycles));
      }
      if (rows[0].output != rows[1].output ||
          rows[0].cycles != rows[1].cycles) {
        std::fprintf(stderr, "ucc bench: engines disagree (output %s, "
                             "cycles %s)\n",
                     rows[0].output == rows[1].output ? "match" : "differ",
                     rows[0].cycles == rows[1].cycles ? "match" : "differ");
        return 1;
      }
      return 0;
    }
    if (opts.command != "run") return usage();

    uc::cm::Machine machine(opts.machine);
    auto result = program.run_on(machine, opts.exec);
    std::fputs(result.output().c_str(), stdout);
    if (opts.trace) {
      for (const auto& line : machine.paris_trace()) {
        std::fprintf(stderr, "%s\n", line.c_str());
      }
    }
    if (opts.stats) {
      std::fprintf(stderr, "%s\n",
                   result.stats()
                       .to_string(opts.machine.cost)
                       .c_str());
    }
    return 0;
  } catch (const uc::support::UcCompileError& e) {
    std::fputs(e.what(), stderr);
    return 1;
  } catch (const uc::support::UcRuntimeError& e) {
    std::fprintf(stderr, "runtime error: %s\n", e.what());
    return 1;
  }
}
