#!/usr/bin/env bash
# Build the benchmarks in Release and record the VM engine comparison.
#
#   tools/bench.sh            full sizes, writes BENCH_vm.json at the root
#   tools/bench.sh --smoke    small sizes (CI), same JSON format
#
# The JSON is an array of {program, engine, host_ms, cycles} rows — walk,
# bytecode (fusion off), bytecode-fused, bytecode-native (compiled lane
# kernels; omitted on hosts without a working C++ toolchain), the
# profiling/robustness variants, and the bytecode-shard1/2/4 scaling rows
# (docs/SHARDING.md), one of each per workload (see docs/VM.md).
# tools/ci.sh native gates the recorded fig8 native row against
# regression.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-release"
extra=("$@")

cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j --target vm_engine

"$build/bench/vm_engine" "${extra[@]}" --json="$root/BENCH_vm.json"
echo "wrote $root/BENCH_vm.json"
